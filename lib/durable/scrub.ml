(* Background checksum scrubbing — see scrub.mli. *)

module Metrics = Topk_service.Metrics
module Executor = Topk_service.Executor

type report = { files : int; bad : string list }

let is_target name =
  (not (Filename.check_suffix name ".tmp"))
  && (String.length name > 5 && String.sub name 0 5 = "snap-"
     || String.length name > 9 && String.sub name 0 9 = "manifest-")

(* Structural verification only: every frame's checksum must hold and
   the scan must end exactly at the file's end. *)
let verify_file path =
  match Frame.parse_all (Disk.read_file path) with
  | payloads, `Clean -> payloads <> []
  | _ -> false
  | exception Sys_error _ -> false

let run_once ?metrics ~dir () =
  let targets = List.filter is_target (Disk.readdir dir) in
  let bad =
    List.filter_map
      (fun name ->
        let path = Filename.concat dir name in
        if verify_file path then None else Some path)
      targets
  in
  (match metrics with
  | Some m ->
      Metrics.Counter.incr m.Metrics.scrubs;
      List.iter (fun _ -> Metrics.Counter.incr m.Metrics.checksum_failures) bad
  | None -> ());
  { files = List.length targets; bad }

let spawn ~pool ?metrics ~dir () =
  let result = ref None in
  let fut =
    Executor.submit_task pool ~lane:Topk_service.Lane.Maintenance
      ~name:"scrub" (fun () ->
        result := Some (run_once ?metrics ~dir ()))
  in
  fun () ->
    match (Topk_service.Future.await fut).Topk_service.Response.status with
    | Topk_service.Response.Failed _ -> None
    | _ -> !result
