(** The write-ahead log: one append-only segment per generation.

    Segment [wal-<gen>.log] holds one {!Frame} per update, appended
    {e before} the in-memory index acknowledges the operation
    (WAL-first).  Frames are [seq (u64) | op tag (u32) | element],
    where the element is a length-prefixed [Marshal] payload — opaque
    bytes whose integrity the frame checksum guarantees; portability
    of the element encoding itself is out of scope (a snapshot and its
    WAL are read back by the same binary that wrote them).

    {!append} writes through to the file but durability is only
    promised by {!flush} — the group-commit knob.  {!Store} flushes
    per-append in [Sync] mode, every [n] appends (and at every seal)
    in [Async n].

    {!load} is the recovery side: parse the whole segment, stop at the
    first torn or corrupt frame, and {e truncate} a torn tail in place
    so a re-crash cannot observe a longer file than this recovery
    acknowledged. *)

val path : dir:string -> gen:int -> string

(** {1 The record codec}

    Exposed so other layers can reuse the exact WAL record encoding —
    {!Topk_repl} ships these payloads over its replication transport,
    making the wire format and the on-disk format one and the same. *)

val entry_payload : 'e Topk_ingest.Update_log.entry -> Bytes.t
(** One record's {e unframed} payload: [seq | op tag | element].
    Framing (length + CRC) is the caller's job — {!append} does it via
    {!Frame.append}. *)

val entry_of_payload : Bytes.t -> 'e Topk_ingest.Update_log.entry
(** Inverse of {!entry_payload}.
    @raise Invalid_argument on a structurally bad payload (the CRC of
    the enclosing frame should have been checked first). *)

type 'e t

val create : dir:string -> gen:int -> 'e t
(** Fresh (truncated) segment for generation [gen]. *)

val append : 'e t -> 'e Topk_ingest.Update_log.entry -> unit
(** Frame and append one entry (counted by {!Disk}; may crash). *)

val flush : 'e t -> unit
(** {!Disk.fsync} if anything is pending; no-op (and {e uncounted})
    otherwise. *)

val unflushed : 'e t -> int
(** Appends since the last flush. *)

val close : 'e t -> unit

val load :
  dir:string -> gen:int -> 'e Topk_ingest.Update_log.entry list * [ `Clean | `Torn | `Corrupt ]
(** Replayable entries, oldest first, and how the scan ended.  A
    missing segment is [([], `Clean)] (a generation can die before its
    first append becomes durable).  [`Torn]: a genuine un-fsynced tail
    — cut off in place.  [`Corrupt]: a mid-file checksum mismatch, or
    a tear behind which a clean frame stream resumes (a bit-flipped
    length header, not a short write) — replay stops at the last good
    record and the file is left untouched as evidence; truncation
    would silently discard records that may have been acked. *)
