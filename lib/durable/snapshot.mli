(** Checkpointed snapshots: the sealed level set, serialized.

    [snap-<gen>.dat] is a sequence of {!Frame}s: a header
    [magic | snap_seq (u64) | run count (u32)], then one frame per
    {!Topk_ingest.Ingest.run_data} —
    [level (u32) | seq (u64) | elems | dead ids] with elements as
    length-prefixed [Marshal] payloads and tombstoned ids as [u64]s.
    [snap_seq] is the newest operation sequence the runs fold in;
    recovery restores the index from the runs and replays the WAL
    strictly above it.

    {!write} publishes atomically: the file is assembled under a
    [.tmp] name, fsynced, closed, {e read back and verified}, and only
    then renamed into place — a snapshot name either denotes a
    complete verified file or does not exist.  Verification failure
    (an injected bit flip caught by its own checksum) removes the tmp
    and reports [false] so the caller can retry and count it. *)

val path : dir:string -> gen:int -> string

val write :
  dir:string -> gen:int -> seq:int -> runs:'e Topk_ingest.Ingest.run_data list -> bool
(** Assemble, verify, publish.  [false]: the read-back failed the
    checksum and nothing was published.  May crash mid-write under an
    installed {!Disk} plan — the tmp file left behind is garbage the
    next checkpoint ignores. *)

type 'e contents = { seq : int; runs : 'e Topk_ingest.Ingest.run_data list }

val read : string -> ('e contents, [ `Missing | `Corrupt ]) result
(** Parse and verify a snapshot file.  [`Corrupt] covers torn frames,
    checksum mismatches, and structural decode failures alike — a
    snapshot is all-or-nothing. *)

(** {1 The bytes-level codec}

    The serialized form without the file around it, exposed as the
    snapshot-install hook: {!Topk_repl} ships {!encode}d level sets
    over its transport to catch a lagging replica up, and the replica
    {!decode}s and restores — the same format recovery reads off
    disk. *)

val encode : seq:int -> runs:'e Topk_ingest.Ingest.run_data list -> Bytes.t
(** The full framed snapshot image {!write} persists: header frame,
    then one frame per run. *)

val decode : Bytes.t -> ('e contents, [ `Corrupt ]) result
(** Parse and verify an {!encode}d image ([`Corrupt] exactly as in
    {!read}). *)
