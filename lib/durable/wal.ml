(* Write-ahead log segments — see wal.mli. *)

module Log = Topk_ingest.Update_log

let path ~dir ~gen = Filename.concat dir (Printf.sprintf "wal-%d.log" gen)

type 'e t = { file : Disk.file; mutable pending : int }

let create ~dir ~gen = { file = Disk.create (path ~dir ~gen); pending = 0 }

let entry_payload (e : 'e Log.entry) =
  let body = Buffer.create 48 in
  Frame.add_u64 body e.Log.seq;
  (match e.Log.op with
  | Log.Insert x ->
      Frame.add_u32 body 0;
      Frame.add_string body (Marshal.to_string x [])
  | Log.Delete x ->
      Frame.add_u32 body 1;
      Frame.add_string body (Marshal.to_string x []));
  Buffer.to_bytes body

let encode e =
  let buf = Buffer.create 64 in
  Frame.append buf (entry_payload e);
  Buffer.to_bytes buf

let append t e =
  Disk.append t.file (encode e);
  t.pending <- t.pending + 1

let flush t =
  if t.pending > 0 then begin
    Disk.fsync t.file;
    t.pending <- 0
  end

let unflushed t = t.pending

let close t = Disk.close t.file

let entry_of_payload payload : 'e Log.entry =
  let r = Frame.reader payload in
  let seq = Frame.read_u64 r in
  let tag = Frame.read_u32 r in
  let x : 'e = Marshal.from_string (Frame.read_string r) 0 in
  match tag with
  | 0 -> { Log.seq; op = Log.Insert x }
  | 1 -> { Log.seq; op = Log.Delete x }
  | n -> invalid_arg (Printf.sprintf "Wal.entry_of_payload: bad op tag %d" n)

let decode = entry_of_payload

let load ~dir ~gen =
  let p = path ~dir ~gen in
  if not (Disk.exists p) then ([], `Clean)
  else begin
    let b = Disk.read_file p in
    let payloads, status = Frame.parse_all b in
    (* A checksummed payload that still fails to decode means the
       writer and reader disagree structurally — treat it like
       corruption rather than dying inside recovery. *)
    let rec decode_prefix acc = function
      | [] -> (List.rev acc, false)
      | p :: rest -> (
          match decode p with
          | e -> decode_prefix (e :: acc) rest
          | exception _ -> (List.rev acc, true))
    in
    let entries, bad_decode = decode_prefix [] payloads in
    match status with
    | _ when bad_decode -> (entries, `Corrupt)
    | `Clean -> (entries, `Clean)
    | `Torn off ->
        (* Truncation is destructive repair, licensed only for a
           genuine un-fsynced tail.  If a clean frame stream resumes
           past the "tear", the length header was corrupted mid-file
           and the stranded frames may hold acked records — surface
           corruption and leave the file as evidence instead. *)
        if Frame.resyncs b off then (entries, `Corrupt)
        else begin
          Disk.truncate p off;
          (entries, `Torn)
        end
    | `Corrupt _ -> (entries, `Corrupt)
  end
