(** The recovery root: a generation-numbered pointer file.

    [manifest-<gen>] is a single {!Frame} holding
    [magic | gen (u64)] — its existence-and-validity asserts "the
    snapshot and WAL of generation [gen] were durably published".
    Recovery scans the directory for manifest files, tries them
    newest-generation first, and falls back across invalid ones, so a
    crash anywhere in a checkpoint leaves at least one valid root (the
    previous generation is only garbage-collected {e after} the new
    manifest is durable).

    Like snapshots, {!publish} goes through a tmp file with fsync and
    read-back verification before the atomic rename. *)

val path : dir:string -> gen:int -> string

val publish : dir:string -> gen:int -> bool
(** Write, verify, rename.  [false]: read-back failed; nothing
    published. *)

val read : string -> int option
(** The generation the manifest commits, or [None] if the file is
    missing, torn, corrupt, or not a manifest. *)

val gens : dir:string -> int list
(** Generations with a manifest file present (validity not yet
    checked), newest first. *)
