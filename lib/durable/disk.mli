(** The file layer under every durable structure — and its adversary.

    All WAL/snapshot/manifest I/O goes through this module, which
    extends the {!Topk_em.Fault} discipline from simulated block I/O
    to real files: an installed {!plan} turns the run into a seeded,
    reproducible crash experiment.  Every durability-relevant
    operation — {!append}, {!fsync}, {!rename}, {!remove} — bumps a
    global operation counter; when the counter reaches
    [plan.crash_at], the "machine" dies:

    - every open (or closed-but-unsynced) file is truncated back to
      its last {!fsync}ed length plus a {e seeded prefix} of the bytes
      written since — the torn tail a real kernel may or may not have
      flushed;
    - a {!rename} or {!remove} caught mid-flight atomically either
      happened or did not (seeded coin flip) — directory operations
      are atomic but their durability is uncertain;
    - {!Crash} is raised, and {e every subsequent counted operation
      raises it again} — a dead machine stays dead until the plan is
      cleared.

    [corrupt_rate] independently flips one seeded bit per appended
    payload with the given probability, modelling bit rot that only a
    checksum can catch.

    With no plan installed — the production path — the durability
    promise is real: {!fsync} issues an actual [Unix.fsync], and
    {!rename}/{!remove} fsync the containing directory so the entry
    change itself survives power loss.  Under an installed plan the
    simulated crash model is the adversary and its durable watermark
    is the source of truth, so the real [fsync] is skipped — seeded
    sweeps stay fast and deterministic.  The operation counter always
    counts, so a profile pass can measure a workload's operation
    stream before sweeping crash points over it. *)

exception Crash
(** The simulated machine died.  Anything the caller had in memory is
    gone; only what the model made durable survives on disk. *)

type plan = {
  seed : int;          (** seeds torn-tail lengths, coin flips, bit flips *)
  crash_at : int option;  (** die when the op counter reaches this *)
  corrupt_rate : float;   (** P(single bit flip) per appended payload *)
}

val plan : ?crash_at:int -> ?corrupt_rate:float -> seed:int -> unit -> plan
(** @raise Invalid_argument if [crash_at < 1] or [corrupt_rate] is
    outside [[0,1]]. *)

val install : plan -> unit
(** Activate [plan] (replacing any other), reseed the stream, and
    reset the {e crashed} latch.  The op counter is {e not} reset —
    use {!reset_ops} to restart the count. *)

val clear : unit -> unit
val active : unit -> plan option

val with_plan : plan -> (unit -> 'a) -> 'a
(** Run with [plan] installed, restoring the previous plan after. *)

val crashed : unit -> bool
(** The latch: did the installed plan fire?  Lets a harness detect a
    crash that surfaced on a background domain rather than in the
    calling thread. *)

(** {1 Operation accounting} *)

val op_count : unit -> int
(** Counted operations ({!append}/{!fsync}/{!rename}/{!remove}) since
    the last {!reset_ops}. *)

val reset_ops : unit -> unit
(** Zero the op counter and drop the recorded phase log. *)

val set_phase : string -> unit
(** Label subsequent operations (e.g. ["wal-append"], ["seal"],
    ["merge"], ["manifest"]) for the profile pass. *)

val set_recording : bool -> unit
(** When on, each counted op records [(index, phase)]. *)

val phase_log : unit -> (int * string) list
(** Recorded [(op index, phase)] pairs, oldest first. *)

(** {1 Files} *)

type file
(** An append-only handle with write/durable watermarks. *)

val create : string -> file
(** Open for append, truncating any existing content. *)

val open_append : string -> file
(** Open for append, keeping existing content (which counts as
    durable — it survived this long). *)

val append : file -> Bytes.t -> unit
(** Counted.  May corrupt (seeded), may crash. *)

val fsync : file -> unit
(** Counted.  On survival, everything written so far becomes durable —
    via a real [fsync] when no plan is installed, in the model only
    under one. *)

val close : file -> unit
(** Not counted.  Closing does {e not} make pending bytes durable:
    un-fsynced tails of closed files are still at risk until the next
    crash or {!clear}. *)

val written : file -> int
val durable : file -> int

val read_file : string -> Bytes.t
(** Whole-file read (uncounted — reads cannot lose data).
    @raise Sys_error if absent. *)

val rename : src:string -> dst:string -> unit
(** Counted.  Atomic: after a crash the destination holds either the
    old or the new content, never a mixture. *)

val remove : string -> unit
(** Counted; missing files are ignored on the survival path. *)

val truncate : string -> int -> unit
(** Uncounted repair: cut a detected torn tail during recovery. *)

val exists : string -> bool
val readdir : string -> string list
(** Sorted entries; [[]] if the directory is absent. *)

val mkdir_p : string -> unit
