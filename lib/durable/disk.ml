(* Fault-injecting file layer — see disk.mli.

   One global mutex serializes every operation: durable-layer I/O is
   coarse (a handful of ops per update at worst) and the callers
   already hold the ingest wrapper's mutex on the hot path, so
   contention is not a concern and the crash semantics stay simple —
   when the counter fires, the whole "machine" is torn down atomically
   under the same lock. *)

exception Crash

type plan = { seed : int; crash_at : int option; corrupt_rate : float }

let plan ?crash_at ?(corrupt_rate = 0.) ~seed () =
  (match crash_at with
  | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Disk.plan: crash_at must be >= 1 (got %d)" c)
  | _ -> ());
  if not (corrupt_rate >= 0. && corrupt_rate <= 1.) then
    invalid_arg
      (Printf.sprintf "Disk.plan: corrupt_rate must be in [0,1] (got %g)"
         corrupt_rate);
  { seed; crash_at; corrupt_rate }

type file = {
  path : string;
  mutable fd : Unix.file_descr option;
  mutable w : int;  (* bytes written *)
  mutable d : int;  (* bytes durable (as of the last surviving fsync) *)
}

type state = {
  mutable p : plan option;
  rng : Topk_util.Rng.Raw.t;  (* raw-seed splitmix64, see {!Topk_util.Rng.Raw} *)
  mutable ops : int;
  mutable phase : string;
  mutable recording : bool;
  mutable phases : (int * string) list;  (* newest first *)
  mutable has_crashed : bool;
  (* Every file whose pending tail is at risk: open handles, plus
     closed files whose last bytes were never fsynced. *)
  mutable at_risk : file list;
}

let mu = Mutex.create ()

let st =
  {
    p = None;
    rng = Topk_util.Rng.Raw.create 0L;
    ops = 0;
    phase = "";
    recording = false;
    phases = [];
    has_crashed = false;
    at_risk = [];
  }

let uniform () = Topk_util.Rng.Raw.uniform st.rng

(* Uniform int in [0, n] for n >= 0. *)
let below_incl n = Topk_util.Rng.Raw.below_incl st.rng n

let install_locked p =
  st.p <- Some p;
  Topk_util.Rng.Raw.reseed st.rng (Int64.of_int (p.seed lxor 0x6b7a));
  st.has_crashed <- false

let install p = Mutex.protect mu (fun () -> install_locked p)

let clear () = Mutex.protect mu (fun () -> st.p <- None)

let active () = Mutex.protect mu (fun () -> st.p)

let with_plan p f =
  let saved = Mutex.protect mu (fun () -> st.p) in
  install p;
  Fun.protect ~finally:(fun () -> Mutex.protect mu (fun () -> st.p <- saved)) f

let crashed () = Mutex.protect mu (fun () -> st.has_crashed)

let op_count () = Mutex.protect mu (fun () -> st.ops)

let reset_ops () =
  Mutex.protect mu (fun () ->
      st.ops <- 0;
      st.phases <- [])

let set_phase s = Mutex.protect mu (fun () -> st.phase <- s)

let set_recording b = Mutex.protect mu (fun () -> st.recording <- b)

let phase_log () = Mutex.protect mu (fun () -> List.rev st.phases)

(* A dead machine performs nothing: every counted op just re-raises
   until the plan is cleared. *)
let check_dead_locked () =
  match st.p with
  | Some { crash_at = Some _; _ } when st.has_crashed -> raise Crash
  | _ -> ()

(* Count one operation; say whether the machine dies on it. *)
let bump_locked () =
  st.ops <- st.ops + 1;
  if st.recording then st.phases <- (st.ops, st.phase) :: st.phases;
  match st.p with
  | Some { crash_at = Some c; _ } when st.ops >= c -> true
  | _ -> false

(* Tear the machine down: truncate every at-risk file back to its
   durable watermark plus a seeded prefix of the pending tail, close
   the handles, and latch.  Caller holds [mu]. *)
let die_locked () =
  st.has_crashed <- true;
  List.iter
    (fun f ->
      let keep = f.d + below_incl (f.w - f.d) in
      (match f.fd with
      | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      f.fd <- None;
      (try Unix.truncate f.path keep with Unix.Unix_error _ | Sys_error _ -> ()))
    st.at_risk;
  st.at_risk <- [];
  raise Crash

let open_mode trunc path =
  Mutex.protect mu (fun () ->
      let flags =
        Unix.O_WRONLY :: Unix.O_CREAT :: (if trunc then [ Unix.O_TRUNC ] else [ Unix.O_APPEND ])
      in
      let fd = Unix.openfile path flags 0o644 in
      let existing =
        if trunc then 0 else (Unix.fstat fd).Unix.st_size
      in
      let f = { path; fd = Some fd; w = existing; d = existing } in
      st.at_risk <- f :: st.at_risk;
      f)

let create path = open_mode true path
let open_append path = open_mode false path

let corrupt_locked b =
  match st.p with
  | Some p when p.corrupt_rate > 0. && uniform () < p.corrupt_rate
                && Bytes.length b > 0 ->
      let b = Bytes.copy b in
      let bit = below_incl ((Bytes.length b * 8) - 1) in
      let byte = bit / 8 in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
      b
  | _ -> b

let append f b =
  Mutex.protect mu (fun () ->
      match f.fd with
      | None -> invalid_arg (Printf.sprintf "Disk.append: %s is closed" f.path)
      | Some fd ->
          check_dead_locked ();
          let b = corrupt_locked b in
          let len = Bytes.length b in
          let off = ref 0 in
          while !off < len do
            off := !off + Unix.write fd b !off (len - !off)
          done;
          f.w <- f.w + len;
          if bump_locked () then die_locked ())

(* With no plan installed the durability promise is real: pay for an
   actual fsync.  Under a plan the crash model is the adversary and
   its watermark is the source of truth — a real fsync would only
   slow the seeded sweep without changing what it can observe. *)
let real_fsync_locked fd =
  if st.p = None then try Unix.fsync fd with Unix.Unix_error _ -> ()

(* Directory-entry durability for rename/remove: an fsync on the
   containing directory, production path only (same rationale). *)
let dir_fsync_locked path =
  if st.p = None then
    match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()

let fsync f =
  Mutex.protect mu (fun () ->
      check_dead_locked ();
      if bump_locked () then die_locked ();
      (match f.fd with Some fd -> real_fsync_locked fd | None -> ());
      f.d <- f.w;
      (* Fully durable and closed: nothing left at risk. *)
      if f.fd = None then st.at_risk <- List.filter (fun g -> g != f) st.at_risk)

let close f =
  Mutex.protect mu (fun () ->
      (match f.fd with
      | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      f.fd <- None;
      (* A fully-synced file can leave the at-risk set; an unsynced
         tail stays vulnerable until the next crash or forever. *)
      if f.d = f.w then st.at_risk <- List.filter (fun g -> g != f) st.at_risk)

let written f = Mutex.protect mu (fun () -> f.w)
let durable f = Mutex.protect mu (fun () -> f.d)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let rename ~src ~dst =
  Mutex.protect mu (fun () ->
      check_dead_locked ();
      if bump_locked () then begin
        (* Atomic but of uncertain durability at the crash point: a
           seeded coin decides whether it made it to the platter. *)
        if uniform () < 0.5 then Unix.rename src dst;
        die_locked ()
      end
      else begin
        Unix.rename src dst;
        dir_fsync_locked dst
      end)

let remove path =
  Mutex.protect mu (fun () ->
      check_dead_locked ();
      if bump_locked () then begin
        if uniform () < 0.5 then (try Sys.remove path with Sys_error _ -> ());
        die_locked ()
      end
      else begin
        (try Sys.remove path with Sys_error _ -> ());
        dir_fsync_locked path
      end)

let truncate path n = Unix.truncate path n

let exists = Sys.file_exists

let readdir path =
  match Sys.readdir path with
  | entries ->
      let l = Array.to_list entries in
      List.sort String.compare l
  | exception Sys_error _ -> []

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
