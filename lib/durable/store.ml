(* Durable ingestion store — see store.mli. *)

module Metrics = Topk_service.Metrics
module Executor = Topk_service.Executor
module Lane = Topk_service.Lane
module Ing = Topk_ingest.Ingest
module Log = Topk_ingest.Update_log

type mode = Volatile | Async of int | Sync

let pp_mode ppf = function
  | Volatile -> Format.pp_print_string ppf "volatile"
  | Sync -> Format.pp_print_string ppf "sync"
  | Async n -> Format.fprintf ppf "async:%d" n

let mode_of_string s =
  match String.lowercase_ascii s with
  | "volatile" -> Some Volatile
  | "sync" -> Some Sync
  | s when String.length s > 6 && String.sub s 0 6 = "async:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some n when n >= 1 -> Some (Async n)
      | _ -> None)
  | _ -> None

module Make (T : Topk_core.Sigs.TOPK) = struct
  module I = Topk_ingest.Ingest.Make (T)

  type t = {
    dir : string;
    mode : mode;
    checkpoint_every : int;
    metrics : Metrics.t option;
    pool : Executor.t option;  (* offloads GC sweeps to Maintenance *)
    mutable gen : int;
    mutable wal : I.P.elem Wal.t option;
    mutable seals : int;  (* seals since the last checkpoint *)
    mutable replaying : bool;
    mutable idx : I.t option;
    mutable recovered_seq : int;
    mutable closed : bool;
  }

  let count metrics f =
    match metrics with Some m -> Metrics.Counter.incr (f m) | None -> ()

  let the_index t =
    match t.idx with Some i -> i | None -> assert false

  let flush_wal t w =
    if Wal.unflushed w > 0 then begin
      Wal.flush w;
      count t.metrics (fun m -> m.Metrics.wal_fsyncs)
    end

  (* Snapshot/manifest writes self-verify by read-back; an injected
     bit flip fails the gate, counts, and is retried — the previous
     generation stays the root the whole time. *)
  let retrying label t f =
    let rec go k =
      if not (f ()) then begin
        count t.metrics (fun m -> m.Metrics.checksum_failures);
        if k <= 1 then
          failwith ("Durable.Store: " ^ label ^ " failed verification repeatedly")
        else go (k - 1)
      end
    in
    go 3

  (* Sweep every stale generation strictly below [keep] — the one
     just superseded on the happy path, plus anything an earlier crash
     stranded between a manifest publish and its GC (which would
     otherwise leak forever, and linger as a silent stale fallback
     root).  Manifests go first so a half-swept generation can never
     be picked as a root whose snapshot is already gone. *)
  let sweep_below t ~keep =
    let stale prefix suffix name =
      let pl = String.length prefix and sl = String.length suffix in
      let nl = String.length name in
      nl > pl + sl
      && String.sub name 0 pl = prefix
      && String.sub name (nl - sl) sl = suffix
      &&
      match int_of_string_opt (String.sub name pl (nl - pl - sl)) with
      | Some g -> g >= 1 && g < keep
      | None -> false
    in
    let files = Disk.readdir t.dir in
    List.iter
      (fun (prefix, suffix) ->
        List.iter
          (fun name ->
            if stale prefix suffix name then
              Disk.remove (Filename.concat t.dir name))
          files)
      [ ("manifest-", ""); ("manifest-", ".tmp");
        ("snap-", ".dat"); ("snap-", ".dat.tmp");
        ("wal-", ".log") ]

  (* Every call happens under the ingest wrapper's mutex — sink events
     fire with it held, and the manual/create/recover paths go through
     [I.with_durable_state] — so checkpoints are serialized against
     each other {e and} against writers: no append can slip into the
     old WAL segment between the captured cut and the rotation. *)
  let do_checkpoint t ~runs ~log =
    if t.mode <> Volatile then begin
      let g' = t.gen + 1 in
      let snap_seq =
        List.fold_left (fun a (r : _ Ing.run_data) -> max a r.Ing.rd_seq) 0 runs
      in
      retrying "snapshot" t (fun () ->
          Snapshot.write ~dir:t.dir ~gen:g' ~seq:snap_seq ~runs);
      (* Rotate the WAL: the new segment re-carries the unsealed
         suffix, making generation g' self-contained before the
         old root goes away. *)
      (match t.wal with
      | Some w ->
          flush_wal t w;
          Wal.close w
      | None -> ());
      let w' = Wal.create ~dir:t.dir ~gen:g' in
      List.iter
        (fun e ->
          Wal.append w' e;
          count t.metrics (fun m -> m.Metrics.wal_appends))
        log;
      if log <> [] then begin
        Wal.flush w';
        count t.metrics (fun m -> m.Metrics.wal_fsyncs)
      end;
      Disk.set_phase "manifest";
      retrying "manifest" t (fun () -> Manifest.publish ~dir:t.dir ~gen:g');
      t.wal <- Some w';
      t.gen <- g';
      t.seals <- 0;
      count t.metrics (fun m -> m.Metrics.checkpoints);
      (* Generation g' is durably the root; everything below is
         garbage.  With a pool the sweep is housekeeping on the
         [Maintenance] lane instead of synchronous work inside the
         checkpoint's critical section — safe to defer because the new
         root is already published, the predicate only ever matches
         generations below it (files of g' and later are untouchable
         however late the task runs), and [Disk.remove] shrugs off a
         path a newer sweep already claimed.  If the pool refuses the
         task (shutdown, open breaker), sweep inline as before. *)
      (match t.pool with
      | Some pool -> (
          match
            Executor.submit_task pool ~lane:Lane.Maintenance
              ~name:"store.gc" (fun () -> sweep_below t ~keep:g')
          with
          | (_ : unit Topk_service.Response.t Topk_service.Future.t) -> ()
          | exception Topk_service.Error.Error _ -> sweep_below t ~keep:g')
      | None -> sweep_below t ~keep:g')
    end

  (* Sink calls arrive under the ingest wrapper's mutex, already
     serialized; [replaying] mutes them while recovery replays the WAL
     through the ordinary insert/delete path. *)
  let mk_sink t : I.P.elem Ing.sink =
    {
      Ing.s_append =
        (fun e ->
          if not t.replaying then
            match t.wal with
            | None -> failwith "Durable.Store: WAL not open"
            | Some w -> (
                Disk.set_phase "wal-append";
                Wal.append w e;
                count t.metrics (fun m -> m.Metrics.wal_appends);
                match t.mode with
                | Sync -> flush_wal t w
                | Async n -> if Wal.unflushed w >= n then flush_wal t w
                | Volatile -> ()));
      s_event =
        (fun ev ~runs ~log ->
          if not t.replaying then begin
            (match ev with
            | Ing.Sealed -> Disk.set_phase "seal"
            | Ing.Merged -> Disk.set_phase "merge"
            | Ing.Frozen -> Disk.set_phase "freeze");
            (match t.wal with Some w -> flush_wal t w | None -> ());
            match ev with
            | Ing.Merged | Ing.Frozen -> do_checkpoint t ~runs ~log
            | Ing.Sealed ->
                t.seals <- t.seals + 1;
                if t.seals >= t.checkpoint_every then do_checkpoint t ~runs ~log
          end);
    }

  let mk_state ~dir ~mode ~checkpoint_every ~metrics ~pool =
    (match mode with
    | Async n when n < 1 ->
        invalid_arg
          (Printf.sprintf "Durable.Store: Async group size must be >= 1 (got %d)" n)
    | _ -> ());
    if checkpoint_every < 1 then
      invalid_arg
        (Printf.sprintf "Durable.Store: checkpoint_every must be >= 1 (got %d)"
           checkpoint_every);
    {
      dir;
      mode;
      checkpoint_every;
      metrics;
      pool;
      gen = 0;
      wal = None;
      seals = 0;
      replaying = false;
      idx = None;
      recovered_seq = 0;
      closed = false;
    }

  let create ?params ?buffer_cap ?fanout ?pool ?metrics ?(mode = Sync)
      ?(checkpoint_every = 4) ~dir elems =
    let t = mk_state ~dir ~mode ~checkpoint_every ~metrics ~pool in
    Disk.mkdir_p dir;
    let sink = if mode = Volatile then None else Some (mk_sink t) in
    let idx = I.create ?params ?buffer_cap ?fanout ?pool ?metrics ?sink elems in
    t.idx <- Some idx;
    (* Publish generation 1 before accepting a single update: from
       here on some valid recovery root always exists. *)
    if mode <> Volatile then begin
      Disk.set_phase "seal";
      I.with_durable_state idx (fun ~runs ~log -> do_checkpoint t ~runs ~log)
    end;
    t

  let recover ?params ?buffer_cap ?fanout ?pool ?metrics ?(mode = Sync)
      ?(checkpoint_every = 4) ~dir () =
    let t0 = Unix.gettimeofday () in
    let count_m f = count metrics f in
    (* Newest valid root wins; invalid roots (a checkpoint died before
       its snapshot, bit rot on the manifest, …) count and fall back. *)
    let rec root = function
      | [] -> None
      | g :: rest -> (
          match Manifest.read (Manifest.path ~dir ~gen:g) with
          | None ->
              count_m (fun m -> m.Metrics.checksum_failures);
              root rest
          | Some _ -> (
              match Snapshot.read (Snapshot.path ~dir ~gen:g) with
              | Error _ ->
                  count_m (fun m -> m.Metrics.checksum_failures);
                  root rest
              | Ok { Snapshot.seq = snap_seq; runs } ->
                  let entries, status = Wal.load ~dir ~gen:g in
                  (match status with
                  | `Torn -> count_m (fun m -> m.Metrics.torn_tails)
                  | `Corrupt -> count_m (fun m -> m.Metrics.checksum_failures)
                  | `Clean -> ());
                  Some (g, snap_seq, runs, entries)))
    in
    match root (Manifest.gens ~dir) with
    | None -> None
    | Some (g, snap_seq, runs, entries) ->
        let t = mk_state ~dir ~mode ~checkpoint_every ~metrics ~pool in
        t.gen <- g;
        t.replaying <- true;
        let sink = if mode = Volatile then None else Some (mk_sink t) in
        let idx =
          I.restore ?params ?buffer_cap ?fanout ?pool ?metrics ?sink ~runs
            ~next_seq:(snap_seq + 1) ()
        in
        t.idx <- Some idx;
        List.iter
          (fun (e : I.P.elem Log.entry) ->
            if e.Log.seq > snap_seq then
              match e.Log.op with
              | Log.Insert x -> I.insert idx x
              | Log.Delete x -> I.delete idx x)
          entries;
        t.recovered_seq <- I.last_seq idx;
        t.replaying <- false;
        (* Re-root under a fresh generation: the replayed suffix is
           folded into the new snapshot/WAL and never replayed again. *)
        if mode <> Volatile then
          I.with_durable_state idx (fun ~runs ~log -> do_checkpoint t ~runs ~log);
        count_m (fun m -> m.Metrics.recoveries);
        (match metrics with
        | Some m ->
            Metrics.Histogram.observe m.Metrics.recovery_time_us
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
        | None -> ());
        Some t

  let index = the_index
  let insert t x = I.insert (the_index t) x
  let delete t x = I.delete (the_index t) x
  let query t q ~k = I.query (the_index t) q ~k

  (* The whole checkpoint — capture {e and} commit — runs inside the
     ingest wrapper's critical section, so a concurrent writer can
     neither append to the WAL segment being retired nor observe its
     Sync-acked record deleted with the old generation. *)
  let checkpoint t =
    if t.mode <> Volatile then
      I.with_durable_state (the_index t) (fun ~runs ~log ->
          do_checkpoint t ~runs ~log)

  let close t =
    if not t.closed then begin
      t.closed <- true;
      I.freeze (the_index t);
      match t.wal with Some w -> Wal.close w | None -> ()
    end

  let mode t = t.mode
  let generation t = t.gen
  let recovered_seq t = t.recovered_seq
end
