(* Generation-numbered recovery root — see manifest.mli. *)

let magic = "TKMAN1"

let path ~dir ~gen = Filename.concat dir (Printf.sprintf "manifest-%d" gen)

let read p =
  if not (Disk.exists p) then None
  else
    match
      let b = Disk.read_file p in
      match Frame.parse_all b with
      | [ payload ], `Clean ->
          let r = Frame.reader payload in
          if Frame.read_string r <> magic then None else Some (Frame.read_u64 r)
      | _ -> None
    with
    | v -> v
    | exception _ -> None

let publish ~dir ~gen =
  let final = path ~dir ~gen in
  let tmp = final ^ ".tmp" in
  let body = Buffer.create 24 in
  Frame.add_string body magic;
  Frame.add_u64 body gen;
  let f = Disk.create tmp in
  Disk.append f (Frame.frame (Buffer.to_bytes body));
  Disk.fsync f;
  Disk.close f;
  match read tmp with
  | Some g when g = gen ->
      Disk.rename ~src:tmp ~dst:final;
      true
  | _ ->
      Disk.remove tmp;
      false

let gens ~dir =
  Disk.readdir dir
  |> List.filter_map (fun name ->
         match String.index_opt name '-' with
         | Some i
           when String.sub name 0 i = "manifest"
                && not (Filename.check_suffix name ".tmp") -> (
             match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
             | Some g when g >= 1 -> Some g
             | _ -> None)
         | _ -> None)
  |> List.sort (fun a b -> compare b a)
