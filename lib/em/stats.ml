type snapshot = {
  ios : int;
  scanned : int;
  queries : int;
}

let zero_snapshot = { ios = 0; scanned = 0; queries = 0 }

let add a b =
  {
    ios = a.ios + b.ios;
    scanned = a.scanned + b.scanned;
    queries = a.queries + b.queries;
  }

let diff a b =
  {
    ios = a.ios - b.ios;
    scanned = a.scanned - b.scanned;
    queries = a.queries - b.queries;
  }

type state = {
  domain : int;  (* id of the domain that owns these counters *)
  mutable s_ios : int;
  mutable s_scanned : int;
  mutable s_queries : int;
  mutable s_carry : int;  (* scanned elements not yet filling a block *)
  mutable s_faults : int;  (* transient Em_faults injected on this domain *)
  mutable s_spikes : int;  (* latency spikes injected on this domain *)
}

(* Every domain that ever charges work registers its counter record
   here, so totals can be aggregated after workers have joined.  States
   of terminated domains stay registered: their counts remain part of
   the aggregate, exactly like a worker flushing its tally on exit. *)
let registry : state list ref = ref []

let registry_mutex = Mutex.create ()

let fresh_state () =
  let s =
    {
      domain = (Domain.self () :> int);
      s_ios = 0;
      s_scanned = 0;
      s_queries = 0;
      s_carry = 0;
      s_faults = 0;
      s_spikes = 0;
    }
  in
  Mutex.protect registry_mutex (fun () -> registry := s :: !registry);
  s

(* Per-domain counters: the main domain's slot behaves exactly like the
   old global record, so single-threaded callers see no change. *)
let key = Domain.DLS.new_key fresh_state

let state () = Domain.DLS.get key

let reset () =
  let state = state () in
  state.s_ios <- 0;
  state.s_scanned <- 0;
  state.s_queries <- 0;
  state.s_carry <- 0;
  state.s_faults <- 0;
  state.s_spikes <- 0

let snapshot_of s = { ios = s.s_ios; scanned = s.s_scanned; queries = s.s_queries }

let snapshot () = snapshot_of (state ())

let ios () = (state ()).s_ios

(* Fault-injection wiring: {!Fault} installs itself here at link time
   (a forward reference breaks the Stats <-> Fault module cycle).  The
   hook is consulted once per *charged block I/O* — the universal
   block-fetch point every structure goes through — and may raise
   {!Fault.Em_fault} or stall for a simulated latency spike.  Counters
   are updated before the hook runs, so accounting stays consistent
   even when the access "fails".  The default hook is a no-op. *)
let io_fault_hook : (int -> unit) ref = ref (fun _ -> ())

let charge_ios n =
  if n < 0 then invalid_arg "Stats.charge_ios: negative";
  let state = state () in
  state.s_ios <- state.s_ios + n;
  if n > 0 then !io_fault_hook n

let charge_scan t =
  if t < 0 then invalid_arg "Stats.charge_scan: negative";
  if t > 0 then begin
    let state = state () in
    let b = (Config.current ()).Config.b in
    let total = state.s_carry + t in
    let added = total / b in
    state.s_ios <- state.s_ios + added;
    state.s_carry <- total mod b;
    state.s_scanned <- state.s_scanned + t;
    if added > 0 then !io_fault_hook added
  end

let mark_query () =
  let state = state () in
  state.s_queries <- state.s_queries + 1

(* --- fault-injection accounting (charged by {!Fault}) --- *)

let charge_fault () =
  let state = state () in
  state.s_faults <- state.s_faults + 1

let charge_spike () =
  let state = state () in
  state.s_spikes <- state.s_spikes + 1

let faults () = (state ()).s_faults

let spikes () = (state ()).s_spikes

let round_carry () =
  let state = state () in
  if state.s_carry > 0 then begin
    state.s_ios <- state.s_ios + 1;
    state.s_carry <- 0
  end

let measure f =
  let state = state () in
  let saved = snapshot_of state in
  let saved_carry = state.s_carry in
  let saved_faults = state.s_faults in
  let saved_spikes = state.s_spikes in
  reset ();
  let restore () =
    state.s_ios <- saved.ios;
    state.s_scanned <- saved.scanned;
    state.s_queries <- saved.queries;
    state.s_carry <- saved_carry;
    state.s_faults <- saved_faults;
    state.s_spikes <- saved_spikes
  in
  match f () with
  | x ->
      let s = snapshot_of state in
      restore ();
      (x, s)
  | exception e ->
      restore ();
      raise e

(* --- cross-domain aggregation --- *)

let registered () = Mutex.protect registry_mutex (fun () -> !registry)

let aggregate () =
  List.fold_left
    (fun acc s -> add acc (snapshot_of s))
    zero_snapshot (registered ())

let per_domain () =
  List.rev_map (fun s -> (s.domain, snapshot_of s)) (registered ())

let reset_all () =
  List.iter
    (fun s ->
      s.s_ios <- 0;
      s.s_scanned <- 0;
      s.s_queries <- 0;
      s.s_carry <- 0;
      s.s_faults <- 0;
      s.s_spikes <- 0)
    (registered ())

let faults_total () =
  List.fold_left (fun acc s -> acc + s.s_faults) 0 (registered ())

let spikes_total () =
  List.fold_left (fun acc s -> acc + s.s_spikes) 0 (registered ())

let pp ppf s =
  Format.fprintf ppf "ios=%d scanned=%d queries=%d" s.ios s.scanned s.queries
