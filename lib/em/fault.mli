(** Seeded, deterministic fault injection for the EM layer.

    Real external-memory systems must stay correct when a block fetch
    fails or stalls.  This module gives the simulated EM layer the same
    adversary: an installed {!plan} makes {e every charged block I/O}
    (via {!Stats.io_fault_hook} — cache-miss fetches, direct
    {!Stats.charge_ios} node visits, scans crossing a block boundary)
    and, optionally, every {!Io_array} element probe inject transient
    {!Em_fault} exceptions and simulated latency spikes, with seeded
    per-domain randomness so a chaos run is reproducible.

    Determinism: each domain draws from its own splitmix64 stream,
    seeded from [plan.seed] and a stable per-domain stream index (the
    order in which domains first touch the fault layer).  A
    single-domain run therefore replays the exact same fault sequence
    for the same plan; a multi-domain run is deterministic per
    (plan, stream) even though the scheduler decides which query meets
    which stream.

    Injected faults and spikes are charged to the per-domain counters
    in {!Stats} ({!Stats.faults}, {!Stats.spikes},
    {!Stats.faults_total}, {!Stats.spikes_total}).

    When no plan is installed (the default), the hooks are a single
    atomic load — the cost model is unchanged. *)

exception Em_fault of string
(** A transient block-level failure.  The serving layer
    ({!Topk_service.Executor}) classifies this as retryable; anything
    else escaping a query is permanent. *)

type plan = {
  seed : int;                (** root seed of the per-domain streams *)
  io_fault_rate : float;     (** P(transient fault) per block-fetch miss *)
  access_fault_rate : float; (** P(transient fault) per element probe *)
  latency_rate : float;      (** P(latency spike) per block-fetch miss *)
  latency_s : float;         (** spike duration, seconds *)
  max_faults : int option;   (** stop injecting after this many, globally *)
}

val plan :
  ?io_fault_rate:float ->
  ?access_fault_rate:float ->
  ?latency_rate:float ->
  ?latency_s:float ->
  ?max_faults:int ->
  seed:int ->
  unit ->
  plan
(** Build a plan.  Defaults: [io_fault_rate = 0.05],
    [access_fault_rate = 0], [latency_rate = 0], [latency_s = 100us],
    no fault cap.
    @raise Invalid_argument if a rate is outside [[0,1]], [latency_s]
    is negative, or [max_faults] is negative. *)

val install : plan -> unit
(** Make [plan] the active plan (replacing any other) and reseed every
    domain's stream.  The [max_faults] cap restarts from zero. *)

val clear : unit -> unit
(** Deactivate fault injection. *)

val active : unit -> plan option

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] runs [f] with [p] installed, restoring the
    previously active plan (if any) afterwards, even on exception. *)

(** {1 Hooks}

    Called by the EM layer; user code normally never calls these. *)

val tick_io : unit -> unit
(** Consulted once per charged block I/O — this module installs itself
    into {!Stats.io_fault_hook} at link time, so every
    {!Stats.charge_ios} / {!Stats.charge_scan} that charges at least
    one I/O (cache-miss fetches included) draws from the plan.  May
    stall for a simulated latency spike and may raise {!Em_fault}. *)

val tick_access : unit -> unit
(** Consulted by {!Io_array.get} / {!Io_array.iter_range} on each
    element probe.  May raise {!Em_fault} (only when
    [access_fault_rate > 0]). *)

(** {1 Counters} *)

val injected_total : unit -> int
(** Transient faults injected across every domain
    (= {!Stats.faults_total}). *)

val spikes_total : unit -> int
(** Latency spikes injected across every domain
    (= {!Stats.spikes_total}). *)

val pp_plan : Format.formatter -> plan -> unit
