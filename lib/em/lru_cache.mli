(** LRU cache of disk blocks.

    Simulates the [M]-word memory of the EM model holding at most
    [M / B] blocks.  {!access} reports whether touching a block id is a
    hit (free) or a miss (one I/O, charged to {!Stats}). *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] sizes the cache to [M / B] blocks of the current
    {!Config}; [~capacity] overrides (must be [>= 1]). *)

val capacity : t -> int

val access : t -> int -> bool
(** [access t blk] touches block [blk]; returns [true] on a hit.  On a
    miss, one I/O is charged to {!Stats} and the least recently used
    block is evicted if the cache is full.  The miss path consults the
    active {!Fault} plan — the simulated fetch may stall (latency
    spike) or raise {!Fault.Em_fault} (transient, retryable); a raised
    fault leaves the cache unmutated, so retrying the access is safe
    and is charged again. *)

val clear : t -> unit

val hits : t -> int

val misses : t -> int
