(* Seeded, deterministic fault injection for the EM layer.

   A [plan] is installed globally (one atomic cell); every domain that
   touches a block while a plan is active draws from its own
   [Domain.DLS]-backed splitmix64 stream, seeded from the plan seed and
   a stable per-domain stream index — so a single-domain run replays
   the exact same fault sequence for the same plan, and a pool run is
   reproducible per (plan, stream).  Faults are charged to the
   per-domain counters in {!Stats} ([charge_fault] / [charge_spike]).

   Hooked into {!Stats.io_fault_hook}, so {e every} charged block I/O
   — cache misses, direct [charge_ios] node visits, scans crossing a
   block boundary — can raise a transient [Em_fault] or stall in a
   simulated latency spike, whichever structure charged it; and from
   {!Io_array.get} / {!Io_array.iter_range} (per-element probes, off by
   default).  The fast path — no plan installed — is a single atomic
   load. *)

exception Em_fault of string

type plan = {
  seed : int;
  io_fault_rate : float;
  access_fault_rate : float;
  latency_rate : float;
  latency_s : float;
  max_faults : int option;
}

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault.plan: %s must be in [0,1] (got %g)" name r)

let plan ?(io_fault_rate = 0.05) ?(access_fault_rate = 0.)
    ?(latency_rate = 0.) ?(latency_s = 1e-4) ?max_faults ~seed () =
  check_rate "io_fault_rate" io_fault_rate;
  check_rate "access_fault_rate" access_fault_rate;
  check_rate "latency_rate" latency_rate;
  if latency_s < 0. then
    invalid_arg
      (Printf.sprintf "Fault.plan: latency_s must be >= 0 (got %g)" latency_s);
  (match max_faults with
  | Some m when m < 0 ->
      invalid_arg
        (Printf.sprintf "Fault.plan: max_faults must be >= 0 (got %d)" m)
  | _ -> ());
  { seed; io_fault_rate; access_fault_rate; latency_rate; latency_s;
    max_faults }

(* The installed plan, tagged with an epoch so per-domain streams
   reseed whenever a plan is (re)installed. *)
let current : (int * plan) option Atomic.t = Atomic.make None

let epochs = Atomic.make 0

(* Global count of injected faults, for the [max_faults] cap. *)
let injected_cap_count = Atomic.make 0

let install p =
  let e = 1 + Atomic.fetch_and_add epochs 1 in
  Atomic.set injected_cap_count 0;
  Atomic.set current (Some (e, p))

let clear () = Atomic.set current None

let active () = Option.map snd (Atomic.get current)

let with_plan p f =
  let saved = Atomic.get current in
  install p;
  Fun.protect ~finally:(fun () -> Atomic.set current saved) f

(* --- per-domain deterministic streams --- *)

type dls = {
  stream : int;  (* stable per-domain stream index, in DLS-init order *)
  mutable epoch : int;
  rng : Topk_util.Rng.Raw.t;  (* raw-seed splitmix64, see {!Topk_util.Rng.Raw} *)
}

let stream_counter = Atomic.make 0

let key =
  Domain.DLS.new_key (fun () ->
      {
        stream = Atomic.fetch_and_add stream_counter 1;
        epoch = -1;
        rng = Topk_util.Rng.Raw.create 0L;
      })

let uniform d = Topk_util.Rng.Raw.uniform d.rng

let seed_for p d = Int64.of_int (p.seed lxor ((d.stream + 1) * 0x9E3779B9))

let local (e, p) =
  let d = Domain.DLS.get key in
  if d.epoch <> e then begin
    d.epoch <- e;
    Topk_util.Rng.Raw.reseed d.rng (seed_for p d)
  end;
  d

let busy_wait s =
  if s > 0. then begin
    let until = Unix.gettimeofday () +. s in
    while Unix.gettimeofday () < until do
      Domain.cpu_relax ()
    done
  end

let under_cap p =
  match p.max_faults with
  | None -> true
  | Some m -> Atomic.get injected_cap_count < m

let maybe_fault p d rate what =
  if rate > 0. && uniform d < rate && under_cap p then begin
    Atomic.incr injected_cap_count;
    Stats.charge_fault ();
    raise (Em_fault what)
  end

(* Hook for {!Lru_cache.access} on a block-fetch miss: a latency spike
   and/or a transient fault, in that order. *)
let tick_io () =
  match Atomic.get current with
  | None -> ()
  | Some ((_, p) as cur) ->
      let d = local cur in
      if p.latency_rate > 0. && uniform d < p.latency_rate then begin
        Stats.charge_spike ();
        busy_wait p.latency_s
      end;
      maybe_fault p d p.io_fault_rate "transient block I/O fault"

(* Hook for {!Io_array} element probes. *)
let tick_access () =
  match Atomic.get current with
  | None -> ()
  | Some ((_, p) as cur) ->
      if p.access_fault_rate > 0. then
        maybe_fault p (local cur) p.access_fault_rate
          "transient block access fault"

(* Install the forward hook in {!Stats}: every charged block I/O —
   whether from a cache miss, a direct [charge_ios] (tree node visits)
   or a scan crossing a block boundary — draws from the plan once per
   I/O.  This is the universal fetch point: structures that never go
   through {!Lru_cache} still face the fault model. *)
let () = Stats.io_fault_hook := fun n -> for _ = 1 to n do tick_io () done

let injected_total () = Stats.faults_total ()

let spikes_total () = Stats.spikes_total ()

let pp_plan ppf p =
  Format.fprintf ppf
    "@[<h>fault-plan{seed=%d io=%.3g access=%.3g latency=%.3g/%.0fus%s}@]"
    p.seed p.io_fault_rate p.access_fault_rate p.latency_rate
    (p.latency_s *. 1e6)
    (match p.max_faults with
    | None -> ""
    | Some m -> Printf.sprintf " cap=%d" m)
