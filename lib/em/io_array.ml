type 'a t = {
  data : 'a array;
  cache : Lru_cache.t;
  base : int;  (* distinct block-id space per array *)
}

let fresh_base =
  let next = ref 0 in
  fun len ->
    let b = !next in
    (* Reserve enough block ids for this array under any B >= 1. *)
    next := b + len + 1;
    b

let of_array ?cache data =
  let cache = match cache with Some c -> c | None -> Lru_cache.create () in
  { data; cache; base = fresh_base (Array.length data) }

let length t = Array.length t.data

let block_of t i =
  let c = Config.current () in
  t.base + (i / c.Config.b)

(* Both access paths consult the fault plan: [Fault.tick_access]
   injects per-element probe faults (off by default), and the cache
   access itself goes through [Fault.tick_io] on every block-fetch
   miss.  With no plan installed each hook is one atomic load. *)

let get t i =
  Fault.tick_access ();
  ignore (Lru_cache.access t.cache (block_of t i));
  t.data.(i)

let unsafe_payload t = t.data

let iter_range t ~lo ~hi f =
  let lo = max 0 lo and hi = min hi (Array.length t.data) in
  for i = lo to hi - 1 do
    Fault.tick_access ();
    ignore (Lru_cache.access t.cache (block_of t i));
    f t.data.(i)
  done

let space_words t = Array.length t.data
