(* Doubly linked LRU list over a hash table of resident blocks. *)

type node = {
  block : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ?capacity () =
  let cap =
    match capacity with
    | Some c ->
        if c < 1 then invalid_arg "Lru_cache.create: capacity must be >= 1";
        c
    | None ->
        let c = Config.current () in
        max 1 (c.Config.m / c.Config.b)
  in
  { cap; table = Hashtbl.create 64; head = None; tail = None;
    hits = 0; misses = 0 }

let capacity t = t.cap

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some s -> s.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.block

let access t block =
  match Hashtbl.find_opt t.table block with
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      true
  | None ->
      t.misses <- t.misses + 1;
      (* The simulated block fetch: [Stats.charge_ios] consults the
         installed fault plan (via {!Stats.io_fault_hook}), so this
         miss may stall in a latency spike or abort with a transient
         [Fault.Em_fault].  The I/O is charged either way — the fetch
         was attempted — and the cache is not yet mutated, so a raised
         fault leaves the LRU structure consistent and a retry simply
         misses (and is charged) again. *)
      Stats.charge_ios 1;
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      let node = { block; prev = None; next = None } in
      Hashtbl.replace t.table block node;
      push_front t node;
      false

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let hits t = t.hits

let misses t = t.misses
