(** An array whose accesses are charged to the EM cost model.

    Each element occupies [O(1)] words (one, by convention).  Random
    probes go through an {!Lru_cache}, so sequential scans cost
    [ceil (t / B)] I/Os while scattered probes cost up to one I/O
    each — exactly the asymmetry the paper's reductions exploit. *)

type 'a t

val of_array : ?cache:Lru_cache.t -> 'a array -> 'a t
(** Wrap an array.  The array is not copied.  A fresh private cache is
    created unless [~cache] shares one. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Charged access.  Consults the active {!Fault} plan: may raise
    {!Fault.Em_fault} (transient, retryable) when one is installed. *)

val unsafe_payload : 'a t -> 'a array
(** The underlying array, for cost-free bookkeeping (e.g. rebuilds).
    Accesses through it are not charged. *)

val iter_range : 'a t -> lo:int -> hi:int -> ('a -> unit) -> unit
(** [iter_range t ~lo ~hi f] applies [f] to elements [lo..hi-1] as one
    sequential scan (charged via block accesses, benefiting from the
    cache like any other access).  Like {!get}, each probe consults
    the active {!Fault} plan and may raise {!Fault.Em_fault}. *)

val space_words : 'a t -> int
(** Words occupied: one per element. *)
