(** I/O accounting.

    Every data structure in this library charges its work here, at the
    granularity of the EM model (Section 1.1 of the paper): the {e time}
    of an algorithm is the number of I/Os it performs.  Structures
    charge either whole I/Os (one per tree node visited, one per block
    fetched) or element scans, which are converted to [ceil (t / B)]
    I/Os under the current {!Config}.

    Counters are {e per-domain} ([Domain.DLS]-backed): each domain
    charges its own slot without synchronisation, so the serving layer
    ({!Topk_service}) can run queries on many domains concurrently.  In
    a single-domain program the main domain's slot behaves exactly like
    the global counter of the original model — [reset], [snapshot],
    [ios] and [measure] all act on the calling domain only.  Totals
    across domains are available through {!aggregate}, {!per_domain}
    and {!reset_all}. *)

type snapshot = {
  ios : int;       (** block I/Os charged (node visits + scan blocks) *)
  scanned : int;   (** raw elements touched by sequential scans *)
  queries : int;   (** number of [query] marks *)
}

val zero_snapshot : snapshot

val add : snapshot -> snapshot -> snapshot
(** Componentwise sum. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff after before] is the componentwise difference — the cost of
    the work performed between the two snapshots. *)

val reset : unit -> unit
(** Zero the calling domain's counters. *)

val snapshot : unit -> snapshot
(** The calling domain's counters. *)

val ios : unit -> int
(** The calling domain's I/Os since its last {!reset}. *)

val charge_ios : int -> unit
(** Charge [n] whole I/Os ([n >= 0]). *)

val charge_scan : int -> unit
(** Charge a sequential scan / reporting of [t] elements.  Scanned
    elements accumulate across calls and convert to one I/O per [B] of
    them (a carry keeps the remainder), so a query reporting [t]
    elements one at a time is charged [~ t/B] I/Os in total — the
    [O(t/B)] output term of the EM model.  A scan of [0] elements
    costs nothing. *)

val mark_query : unit -> unit
(** Record that one query was answered (for averaging). *)

(** {1 Fault-injection accounting}

    {!Fault} charges every injected transient fault and latency spike
    here, per-domain like the I/O counters, so serving-layer tests can
    assert on how much chaos actually reached each worker.  Cleared by
    {!reset} / {!reset_all} and isolated by {!measure} like the other
    counters. *)

val io_fault_hook : (int -> unit) ref
(** Internal wiring point, installed by {!Fault} at link time (a
    forward reference that breaks the [Stats] <-> [Fault] module
    cycle).  Consulted once per {!charge_ios} / {!charge_scan} call
    that charges at least one block I/O, with the number of I/Os just
    charged; it may raise {!Fault.Em_fault} or stall in a simulated
    latency spike.  Counters are updated {e before} the hook runs, so
    accounting stays consistent even when the access "fails".  The
    default is a no-op; user code should not touch this. *)

val charge_fault : unit -> unit
(** Record one injected transient fault on the calling domain
    (charged by {!Fault}; structures never call this directly). *)

val charge_spike : unit -> unit
(** Record one injected latency spike on the calling domain. *)

val faults : unit -> int
(** Transient faults injected on the calling domain since its last
    {!reset}. *)

val spikes : unit -> int
(** Latency spikes injected on the calling domain since its last
    {!reset}. *)

val faults_total : unit -> int
(** Sum of injected transient faults across every domain. *)

val spikes_total : unit -> int
(** Sum of injected latency spikes across every domain. *)

val round_carry : unit -> unit
(** Close the current partial scan block: if scanned elements are
    pending below a block boundary, charge one I/O for them and clear
    the carry.  Charging a scan of [t] elements between two
    [round_carry]s costs exactly [ceil (t / B)] I/Os, making a query's
    cost independent of what ran before it on the same domain — the
    serving layer brackets each query with this so per-domain totals
    are exactly the sum of per-query costs, regardless of how queries
    were scheduled across workers. *)

val measure : (unit -> 'a) -> 'a * snapshot
(** [measure f] runs [f] with fresh counters and returns its result
    together with the I/Os it consumed; previous counters are restored
    (and {e not} incremented) afterwards.  Counts only work done on the
    calling domain. *)

(** {1 Cross-domain aggregation}

    Work charged on a domain stays visible after the domain terminates,
    so joining a worker pool and then calling {!aggregate} yields the
    exact total of all work ever charged (the join provides the
    happens-before edge).  Calling {!aggregate} while other domains are
    still running is safe but returns a possibly-stale reading. *)

val aggregate : unit -> snapshot
(** Sum of the counters of every domain that ever charged work
    (including terminated ones). *)

val per_domain : unit -> (int * snapshot) list
(** One entry per domain that ever charged work, keyed by its
    [Domain.id], in registration order. *)

val reset_all : unit -> unit
(** Zero the counters of {e every} domain.  Only meaningful when no
    other domain is concurrently charging. *)

val pp : Format.formatter -> snapshot -> unit
