type t = Interactive | Batch | Maintenance

let count = 3

let all = [ Interactive; Batch; Maintenance ]

let index = function Interactive -> 0 | Batch -> 1 | Maintenance -> 2

let of_index = function
  | 0 -> Interactive
  | 1 -> Batch
  | 2 -> Maintenance
  | i -> invalid_arg (Printf.sprintf "Lane.of_index: no lane %d" i)

let name = function
  | Interactive -> "interactive"
  | Batch -> "batch"
  | Maintenance -> "maintenance"

let default_weight = function Interactive -> 8 | Batch -> 2 | Maintenance -> 1

let pp ppf t = Format.pp_print_string ppf (name t)
