type t =
  | Overloaded
  | Not_found of string list
  | Deadline
  | Shed
  | Failed of string

exception Error of t

let fail e = raise (Error e)

let to_string = function
  | Overloaded -> "overloaded"
  | Not_found [] -> "not found"
  | Not_found (best :: _) ->
      Printf.sprintf "not found (did you mean %S?)" best
  | Deadline -> "deadline"
  | Shed -> "shed"
  | Failed msg -> msg

let of_exn = function
  | Error e -> e
  | Invalid_argument msg -> Failed msg
  | e -> Failed (Printexc.to_string e)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Registered so an escaped [Error] prints its vocabulary instead of
   an opaque constructor dump. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Topk_service.Error.Error(%s)" (to_string e))
    | _ -> None)
