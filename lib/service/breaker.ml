(* Failure-rate-driven circuit breaker / admission controller.

   Classic three-state machine in front of the executor's queue:

     Closed     — admit everything; track the last [window] final
                  outcomes in a ring.  When at least [min_samples]
                  outcomes are present and the failure fraction
                  reaches [failure_threshold], trip to Open.
     Open       — reject every admission for [open_duration] seconds,
                  then move to Half_open on the next admission check.
     Half_open  — admit at most [half_open_probes] probe requests.
                  [half_open_probes] successes close the breaker
                  (ring reset); any failure re-opens it.

   Only *final* outcomes count: a transient fault that is retried and
   eventually succeeds is one success, a request whose retries are
   exhausted is one failure.  Outcomes are reported by worker domains,
   admissions come from submitter threads, so all state is behind one
   small mutex (the executor already serialises submissions on its own
   queue mutex; this lock is never held while running a query). *)

type state = Closed | Open | Half_open

type policy = {
  window : int;
  failure_threshold : float;
  min_samples : int;
  open_duration : float;
  half_open_probes : int;
}

let default_policy =
  {
    window = 128;
    failure_threshold = 0.5;
    min_samples = 32;
    open_duration = 1.0;
    half_open_probes = 4;
  }

let validate_policy p =
  if p.window < 1 then invalid_arg "Breaker: window must be >= 1";
  if not (p.failure_threshold > 0. && p.failure_threshold <= 1.) then
    invalid_arg "Breaker: failure_threshold must be in (0,1]";
  if p.min_samples < 1 then invalid_arg "Breaker: min_samples must be >= 1";
  if p.min_samples > p.window then
    invalid_arg "Breaker: min_samples must be <= window";
  if not (p.open_duration >= 0.) then
    invalid_arg "Breaker: open_duration must be >= 0";
  if p.half_open_probes < 1 then
    invalid_arg "Breaker: half_open_probes must be >= 1"

type t = {
  policy : policy;
  mutex : Mutex.t;
  on_transition : state -> unit;  (* called outside holding [mutex]?  no:
                                     called while holding it; keep hooks
                                     trivial (metrics updates only). *)
  ring : bool array;              (* true = failure *)
  mutable ring_len : int;         (* outcomes recorded, <= window *)
  mutable ring_pos : int;         (* next slot to overwrite *)
  mutable ring_failures : int;    (* failures currently in the ring *)
  mutable state : state;
  mutable opened_at : float;
  mutable probes_inflight : int;
  mutable probe_successes : int;
  mutable opens : int;            (* cumulative Closed/Half_open -> Open *)
}

let create ?(policy = default_policy) ?(on_transition = fun _ -> ()) () =
  validate_policy policy;
  {
    policy;
    mutex = Mutex.create ();
    on_transition;
    ring = Array.make policy.window false;
    ring_len = 0;
    ring_pos = 0;
    ring_failures = 0;
    state = Closed;
    opened_at = neg_infinity;
    probes_inflight = 0;
    probe_successes = 0;
    opens = 0;
  }

let reset_ring t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.ring_len <- 0;
  t.ring_pos <- 0;
  t.ring_failures <- 0

let transition t s =
  if t.state <> s then begin
    t.state <- s;
    (match s with
    | Open -> t.opens <- t.opens + 1
    | Half_open ->
        t.probes_inflight <- 0;
        t.probe_successes <- 0
    | Closed -> reset_ring t);
    t.on_transition s
  end

let push_outcome t ~failed =
  if t.ring_len = t.policy.window then begin
    (* overwrite the oldest entry *)
    if t.ring.(t.ring_pos) then t.ring_failures <- t.ring_failures - 1
  end
  else t.ring_len <- t.ring_len + 1;
  t.ring.(t.ring_pos) <- failed;
  if failed then t.ring_failures <- t.ring_failures + 1;
  t.ring_pos <- (t.ring_pos + 1) mod t.policy.window

let failure_rate t =
  if t.ring_len = 0 then 0.
  else float_of_int t.ring_failures /. float_of_int t.ring_len

let admit t ~now =
  Mutex.protect t.mutex (fun () ->
      match t.state with
      | Closed -> true
      | Open ->
          if now -. t.opened_at >= t.policy.open_duration then begin
            transition t Half_open;
            t.probes_inflight <- 1;
            true
          end
          else false
      | Half_open ->
          if t.probes_inflight < t.policy.half_open_probes then begin
            t.probes_inflight <- t.probes_inflight + 1;
            true
          end
          else false)

let record t ~now ~ok =
  Mutex.protect t.mutex (fun () ->
      match t.state with
      | Closed ->
          push_outcome t ~failed:(not ok);
          if
            t.ring_len >= t.policy.min_samples
            && failure_rate t >= t.policy.failure_threshold
          then begin
            t.opened_at <- now;
            transition t Open
          end
      | Half_open ->
          (* Late outcomes from requests admitted before the trip can
             land here too; the inflight floor keeps them harmless. *)
          t.probes_inflight <- max 0 (t.probes_inflight - 1);
          if ok then begin
            t.probe_successes <- t.probe_successes + 1;
            if t.probe_successes >= t.policy.half_open_probes then
              transition t Closed
          end
          else begin
            t.opened_at <- now;
            transition t Open
          end
      | Open ->
          (* A straggler finishing after the trip: nothing to decide. *)
          ())

let state t = Mutex.protect t.mutex (fun () -> t.state)

let opens t = Mutex.protect t.mutex (fun () -> t.opens)

let state_code = function Closed -> 0 | Half_open -> 1 | Open -> 2

let state_string = function
  | Closed -> "closed"
  | Half_open -> "half-open"
  | Open -> "open"

let pp_state ppf s = Format.pp_print_string ppf (state_string s)
