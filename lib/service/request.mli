(** Typed query descriptors.

    A request pairs a registered instance with a query, a result size
    [k], and a {!Limits.t} bundle of service constraints (I/O budget
    and time horizon).  The element/query types are erased into
    closures so requests for heterogeneous instances travel through
    one queue; the matching typed {!Future.t} is returned to the
    submitter.

    Execution is {e attempt}-based for the supervision layer: a
    transient {!Topk_em.Fault.Em_fault} escaping the query leaves the
    future unresolved so the executor can retry the request with
    backoff, while any other exception (and normal completion) resolves
    the future immediately.

    When tracing is enabled ({!Topk_trace.Trace.enable}), each attempt
    runs under a root span on its worker domain — carrying the
    instance, [k], attempt number and worker index, plus a
    [sched.dispatch] child span recording the request's {!Lane.t} and
    its queue wait — and the resulting trace id travels back on the
    {!Response.t}.  A request submitted from inside another trace
    (e.g. a scattered shard leg) records that trace as its parent. *)

type spec = {
  instance : string;
  k : int;
  lane : Lane.t;            (** QoS lane the executor queues this on *)
  limits : Limits.t;        (** as given at {!prepare} *)
  deadline : float option;
      (** absolute wall-clock deadline resolved at submission *)
  submitted : float;        (** wall-clock submission time *)
}

(** What the executor needs to know for metrics, with types erased. *)
type outcome = {
  o_status : Response.status;
  o_ios : int;
  o_latency : float;
  o_verdict : bool option;
      (** certification result when the instance had a registered cost
          model: [Some true] = within bound, [Some false] = violation *)
}

(** Result of one execution attempt.  [Completed o] — the future has
    been resolved (with an answer or a permanent {!Response.Failed}).
    [Transient msg] — a retryable fault; the future is {e not}
    resolved, and the caller must either {!run} the request again or
    {!abort} it. *)
type attempt = Completed of outcome | Transient of string

type t

val spec : t -> spec

val attempts : t -> int
(** Number of execution attempts started so far (including the one in
    progress, once {!run} has been entered). *)

val prepare :
  ('q, 'e) Registry.handle ->
  ?lane:Lane.t ->
  ?limits:Limits.t ->
  'q ->
  k:int ->
  t * 'e Response.t Future.t
(** Build a request and the future its response will be delivered on.
    [lane] (default [Interactive]) selects the QoS lane the executor
    queues it on; fan-out layers pass the parent query's lane so every
    leg inherits its priority.  A relative [Limits.Within] horizon is
    anchored now (at submission); fan-out layers pass an absolute
    [Limits.At] so every per-shard leg of one logical query shares a
    single deadline instead of restarting the clock per leg.

    This is serving-infrastructure plumbing: application code should
    go through {!Client.query} (or [Executor.submit]) instead of
    preparing requests by hand.
    @raise Invalid_argument if [k <= 0] or the limits carry a negative
    budget. *)

val make_task :
  name:string ->
  ?lane:Lane.t ->
  ?limits:Limits.t ->
  (unit -> unit) ->
  t * unit Response.t Future.t
(** Build a background job that travels the executor's scheduler like
    a query, on its own lane ([lane] defaults to [Batch]; durable
    scrub and GC pass [Maintenance]): retried on transient
    {!Topk_em.Fault.Em_fault}s, supervised across worker crashes,
    traced under a root span named ["task"], its EM cost charged to
    the worker domain that ran it.  Used by the ingestion layer for
    level merges.  The response carries no answers ([answers = []],
    [k = 0]); completion (or permanent failure) is signalled through
    the future's status. *)

val run : t -> worker:int -> attempt
(** Execute one attempt on the calling domain (normally a pool
    worker), incrementing {!attempts}.  A query exception becomes
    {!Response.Failed} ([Completed]) — except a transient
    {!Topk_em.Fault.Em_fault}, which is reported as [Transient] with
    the future left unresolved for a retry. *)

val abort : t -> worker:int -> reason:Error.t -> outcome
(** Resolve the future with [Failed reason] (no-op on the future if it
    is already resolved — resolution races are benign) and return the
    outcome for metrics.  Used when retries are exhausted and when
    {!Executor.shutdown} drops still-queued requests. *)
