(** Typed query descriptors.

    A request pairs a registered instance with a query, a result size
    [k], and optional service constraints: an I/O [budget] (EM-model
    I/Os this query may spend before being cut off) and a [timeout]
    (seconds from submission; converted to an absolute deadline).  The
    element/query types are erased into the [run] closure so requests
    for heterogeneous instances travel through one queue; the matching
    typed {!Future.t} is returned to the submitter. *)

type spec = {
  instance : string;
  k : int;
  budget : int option;      (** max EM-model I/Os, [None] = unlimited *)
  deadline : float option;  (** absolute wall-clock deadline *)
  submitted : float;        (** wall-clock submission time *)
}

(** What the executor needs to know for metrics, with types erased. *)
type outcome = {
  o_status : Response.status;
  o_ios : int;
  o_latency : float;
}

type t

val spec : t -> spec

val make :
  ('q, 'e) Registry.handle ->
  ?budget:int ->
  ?timeout:float ->
  'q ->
  k:int ->
  t * 'e Response.t Future.t
(** Build a request and the future its response will be delivered on.
    @raise Invalid_argument if [k <= 0] or [budget < 0]. *)

val run : t -> worker:int -> outcome
(** Execute on the calling domain (normally a pool worker), filling the
    future.  Never raises: a query exception becomes
    {!Response.Failed}. *)
