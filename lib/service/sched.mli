(** The multi-lane scheduler behind {!Executor}: three bounded queues
    ({!Lane.t}), dequeued weighted-fair with aging.

    This is a pure data structure — it does no locking and spawns no
    domains; the executor drives it under its own mutex.  What it
    owns is the {e policy}:

    - {b Per-lane bounded queues.}  Each lane has its own capacity;
      {!has_room} is the admission check backpressure ({!Executor.submit})
      and shedding ({!Executor.try_submit}) are built on.  {!push}
      itself is unconditional, because retries unparked by the
      supervisor already hold a pending slot and must not block.
    - {b Weighted-fair dequeue.}  Each dispatch decision picks one
      lane by smooth weighted round-robin over the currently
      non-empty lanes (default shares {!Lane.default_weight} = 8/2/1),
      then pops a batch from that lane only.
    - {b Deadline-aware interactive ordering.}  Inside the
      [Interactive] lane, requests are ordered by absolute deadline
      (earliest first; deadline-free requests come after all
      deadlines, FIFO among themselves).  [Batch] and [Maintenance]
      are FIFO.
    - {b Aging.}  A non-empty lane that has not been granted for
      [aging_rounds] consecutive decisions is served next regardless
      of weights, so batch/maintenance work is starvation-free even
      under interactive saturation: every continuously non-empty lane
      is granted at least once per [aging_rounds + Lane.count]
      decisions.
    - {b Unified mode} ([unified = true]) collapses every lane into
      one FIFO queue — the pre-lane executor, kept as the baseline
      the [topk sched-bench] comparison runs against. *)

type config = {
  capacities : int array;  (** per-lane queue bound, indexed by {!Lane.index} *)
  weights : int array;     (** per-lane dequeue share (>= 1 each) *)
  aging_rounds : int;
      (** grant a waiting non-empty lane after this many consecutive
          dispatch decisions without service (>= 1) *)
  unified : bool;
      (** collapse all lanes into one FIFO queue (no deadline
          ordering, no fairness — the single-queue baseline) *)
}

val default_config : ?capacity:int -> unit -> config
(** Every lane bounded at [capacity] (default 1024), weights
    {!Lane.default_weight}, [aging_rounds = 32], [unified = false]. *)

val unified_config : ?capacity:int -> unit -> config

val validate : config -> unit
(** @raise Invalid_argument on wrong array lengths, a capacity or
    weight < 1, or [aging_rounds < 1]. *)

type 'a t

val create : config -> deadline:('a -> float option) -> 'a t
(** [deadline j] is consulted once at {!push} to order the interactive
    lane; [None] sorts after every concrete deadline.  Validates the
    config. *)

val config : _ t -> config

val length : _ t -> int
(** Total queued across lanes. *)

val is_empty : _ t -> bool

val lane_depth : _ t -> Lane.t -> int
(** In unified mode every lane reports the one shared queue's depth. *)

val has_room : _ t -> Lane.t -> bool
(** [lane_depth t lane < capacity of lane] (the shared queue's
    capacity in unified mode). *)

val push : 'a t -> Lane.t -> 'a -> unit
(** Enqueue unconditionally — admission control is the caller's
    ({!has_room}); supervisor re-pushes of backed-off retries bypass
    it on purpose. *)

val pop_batch : 'a t -> max:int -> (Lane.t * ('a * int) list) option
(** One dispatch decision: pick a lane (aging, then weighted-fair),
    pop up to [max] jobs from it, and return them with the number of
    dispatch decisions each waited in the queue.  [None] when every
    lane is empty.  In unified mode the reported lane is always
    [Interactive] (there is only the one queue); callers that need
    the producer's lane read it off the job itself. *)

val drain_all : 'a t -> 'a list
(** Remove and return everything still queued, interactive lane
    first, each lane in its dequeue order.  Used by the shutdown
    sweep. *)

val round : _ t -> int
(** Dispatch decisions taken so far. *)

val max_wait_rounds : _ t -> Lane.t -> int
(** Largest per-job queue wait (in dispatch decisions) observed on
    this lane so far — the aging law's witness. *)
