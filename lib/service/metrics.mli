(** Lock-free serving metrics.

    All recording paths use [Atomic] read-modify-write operations only —
    no locks — so many worker domains can record concurrently without
    contending.  Histograms use power-of-two buckets (bucket [i] holds
    values in [[2^(i-1), 2^i)]), giving percentile estimates whose
    relative error is bounded by the bucket width; exact count, sum and
    max are tracked on the side. *)

module Counter : sig
  type t

  val create : unit -> t

  val incr : t -> unit

  val add : t -> int -> unit

  val get : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t

  val incr : t -> unit

  val decr : t -> unit

  val set : t -> int -> unit

  val get : t -> int
end

module Histogram : sig
  type t

  val create : unit -> t

  val observe : t -> int -> unit
  (** Record a non-negative observation (negatives clamp to [0]). *)

  val count : t -> int

  val sum : t -> int

  val mean : t -> float

  val max_value : t -> int

  val percentile : t -> float -> int
  (** [percentile t q] for [q] in [[0,1]]: the upper edge of the first
      bucket whose cumulative count reaches rank [ceil (q * count)],
      clamped by the exact maximum.  [0] on an empty histogram. *)
end

(** The registry carried by one {!Executor} pool. *)
type t = {
  started : float;
  submitted : Counter.t;
  completed : Counter.t;
  rejected : Counter.t;       (** admission control: queue-full rejections *)
  failed : Counter.t;         (** queries that raised an exception *)
  cutoff_budget : Counter.t;  (** partial answers due to I/O budget *)
  cutoff_deadline : Counter.t;(** partial answers due to deadline *)
  faults_injected : Counter.t;(** transient EM faults that escaped a query *)
  retries : Counter.t;        (** re-enqueues after a transient fault *)
  respawns : Counter.t;       (** crashed worker domains replaced *)
  aborted : Counter.t;        (** futures resolved [Failed] at shutdown *)
  breaker_rejected : Counter.t;(** admissions refused while a breaker was open *)
  breaker_opens : Counter.t;  (** times any lane's breaker tripped open *)
  breaker_state : Gauge.t;    (** interactive lane: 0 closed / 1 half-open / 2 open *)
  queue_depth : Gauge.t;      (** requests waiting across all lanes *)
  inflight : Gauge.t;         (** requests being executed right now *)
  latency_us : Histogram.t;   (** submit-to-response latency, in µs *)
  ios : Histogram.t;          (** EM-model I/Os per query *)
  batch : Histogram.t;        (** jobs popped per worker wakeup *)
  lane_depth : Gauge.t array;
      (** per-lane queued requests, indexed by {!Lane.index} *)
  lane_admitted : Counter.t array;
      (** per-lane submissions accepted onto the queue *)
  lane_shed : Counter.t array;
      (** per-lane rejections (queue full on [try_submit] + breaker) *)
  lane_breaker_state : Gauge.t array;
      (** per-lane breaker state code (see {!Breaker.state_code}) *)
  lane_latency_us : Histogram.t array;
      (** per-lane submit-to-response latency, in µs *)
  lane_ios : Counter.t array;
      (** per-lane charged EM I/Os of final outcomes — sums exactly to
          the pool's worker-side {!Topk_em.Stats} total once drained *)
  lane_wait_rounds : Histogram.t array;
      (** per-lane queue wait in dispatch decisions ({!Sched.round});
          the max witnesses the aging bound *)
  sharded_queries : Counter.t;(** logical queries fanned out over shards *)
  shards_pruned : Counter.t;  (** shard legs skipped by the max-query bound *)
  fanout : Histogram.t;       (** shard jobs submitted per logical query *)
  shard_latency_us : Histogram.t;(** per-shard leg latency, in µs *)
  shard_ios : Histogram.t;    (** per-shard leg EM I/Os *)
  cert_checked : Counter.t;   (** responses checked against a cost bound *)
  cert_violations : Counter.t;(** checks where measured I/Os exceeded it *)
  updates : Counter.t;        (** ingest: inserts + deletes accepted *)
  seals : Counter.t;          (** ingest: buffers sealed into level-0 runs *)
  merges : Counter.t;         (** ingest: background level merges completed *)
  tombstones : Counter.t;     (** ingest: delete tombstones recorded *)
  epoch_lag : Gauge.t;        (** ingest: current epoch − oldest pinned *)
  merge_latency_us : Histogram.t;(** ingest: background merge wall time, µs *)
  wal_appends : Counter.t;    (** durable: records appended to the WAL *)
  wal_fsyncs : Counter.t;     (** durable: group-commit fsyncs issued *)
  checkpoints : Counter.t;    (** durable: snapshot+manifest generations *)
  recoveries : Counter.t;     (** durable: successful crash recoveries *)
  torn_tails : Counter.t;     (** durable: torn WAL tails truncated *)
  checksum_failures : Counter.t;(** durable: CRC mismatches detected *)
  scrubs : Counter.t;         (** durable: background scrub passes *)
  recovery_time_us : Histogram.t;(** durable: recovery wall time, µs *)
  repl_frames_shipped : Counter.t;(** repl: WAL frames sent to replicas *)
  repl_frames_acked : Counter.t;(** repl: cumulative-ack advances received *)
  repl_frames_dropped : Counter.t;(** repl: messages lost in the transport *)
  snapshot_installs : Counter.t;(** repl: replicas caught up by snapshot *)
  failovers : Counter.t;      (** repl: primary promotions completed *)
  replica_lag : Gauge.t;      (** repl: max replica lag, in op sequences *)
  cache_hits : Counter.t;     (** cache: lookups served from the cache *)
  cache_misses : Counter.t;   (** cache: lookups that fell through *)
  cache_evictions : Counter.t;(** cache: entries dropped by LRU/TTL *)
  cache_bypasses : Counter.t; (** cache: answers too cheap to admit *)
  cache_hit_age_us : Histogram.t;(** cache: age of served entries, µs *)
}

val create : unit -> t

val uptime : t -> float

val qps : t -> float
(** Completed queries per second of uptime. *)

val cutoff_rate : t -> float
(** Fraction of completed queries that were cut off (budget or
    deadline). *)

val cache_hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val report : t -> string
(** Text exposition: one [name value] line per scalar metric, plus
    [count/sum/mean/p50/p95/p99/max] lines per histogram. *)
