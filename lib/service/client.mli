(** The unified query facade.

    One typed entry point — {!query} — in front of every way this
    system can answer a top-k query: a structure on the calling
    domain, an {!Executor} pool, a sharded scatter/gather, or a
    replicated group.  The caller states {e what} it wants (the query,
    [k], {!Limits.t} service constraints, a {!Consistency.t} recency
    level) and the facade decides {e how}: consult the answer cache
    first, dispatch on a miss, admit the completed answer back.

    {b Caching.}  The client owns one {!Topk_cache.Cache} shared by
    all attached handles, keyed by [(instance name, canonical query
    key)] and version-tagged (see {!Topk_cache.Version}).  A hit is
    served with {e zero} charged I/O under a [cache.hit] root span; a
    miss dispatches normally and the completed response is offered
    back from whichever domain filled the future
    ({!Future.on_fill}).  Admission is cost-aware (answers cheaper
    than the cache's [min_cost] threshold are bypassed) and guarded
    against in-flight version movement, and entries admitted before a
    failover can never serve after it (the version's term component
    fences them).  Under the default {!Consistency.Any} level the
    cache only serves entries at exactly the live version, so enabling
    it never changes any answer.

    Error handling is uniform: refusals that the executor surfaces as
    {!Error.Error} exceptions (breaker open, shutdown) come back from
    {!query} as [Failed] responses, so callers handle one shape. *)

type t

val create :
  ?cache:bool ->
  ?cache_stripes:int ->
  ?cache_capacity:int ->
  ?cache_ttl:float ->
  ?cache_min_cost:int ->
  ?metrics:Metrics.t ->
  unit ->
  t
(** [cache:false] disables the answer cache entirely (every query
    dispatches).  The [cache_*] parameters are passed through to
    {!Topk_cache.Cache.create}.  [metrics] receives the cache
    counters ([cache_hits] / [cache_misses] / [cache_evictions] /
    [cache_bypasses]) and the hit-age histogram; pass the pool's
    metrics to see serving and caching in one report.  A fresh
    registry is created otherwise. *)

val metrics : t -> Metrics.t

val cache_stats : t -> Topk_cache.Cache.stats option
(** [None] when caching is disabled. *)

(** Where a handle's queries are answered. *)
type ('q, 'e) source

val direct : ('q, 'e) Registry.handle -> ('q, 'e) source
(** Run on the calling domain (with the same staged budget/deadline
    cutoff, tracing, certification and transient-fault retries a pool
    worker would apply). *)

val pooled : Executor.t -> ('q, 'e) Registry.handle -> ('q, 'e) source
(** Submit to a worker pool with backpressure. *)

val endpoint :
  name:string ->
  (?limits:Limits.t ->
  ?consistency:Consistency.t ->
  'q ->
  k:int ->
  'e Response.t) ->
  ('q, 'e) source
(** An external answering path — a sharded [Scatter.query] or a
    replicated [Group.read] — wrapped as a synchronous closure.  The
    closure interprets [consistency] itself (e.g. by routing to a
    sufficiently-caught-up replica). *)

type ('q, 'e) handle

val attach :
  t ->
  ?version:(unit -> Topk_cache.Version.t) ->
  ?qkey:('q -> string) ->
  ('q, 'e) source ->
  ('q, 'e) handle
(** Bind a source to this client.  [version] samples the instance's
    live {!Topk_cache.Version.t} — its latest applied op sequence and
    failover term (ingest-backed: [term 0, seq = last_seq];
    replicated: the group's term and head).  Without it the instance
    is treated as static (version [t0.s0]) and responses carry no seq
    token.  [qkey] canonicalizes queries into cache keys; the default
    marshals the query's runtime representation, which is faithful
    for the plain-data query types of every built-in problem family —
    supply [qkey] explicitly if your query type contains functions.
    Handles attached to one client must have distinct instance
    names. *)

val name : ('q, 'e) handle -> string

val query :
  ?limits:Limits.t ->
  ?consistency:Consistency.t ->
  ('q, 'e) handle ->
  'q ->
  k:int ->
  'e Response.t Future.t
(** Answer [q] at result size [k].

    The fast path: if the cache holds an entry for this (instance,
    query) whose version the [consistency] level admits against the
    handle's current version and which covers rank [k] (an entry
    cached at a larger k serves any smaller k — prefix serving), it
    is returned immediately with zero charged I/O and the entry's
    sequence as its [seq_token].

    Otherwise the query dispatches through the handle's source.  On
    direct and pooled sources the consistency level is checked
    against the live snapshot first ([At_least s] needs the live seq
    at or above [s]; [Pinned p] needs it exactly [p]); an
    unsatisfiable level yields [Failed Shed].  Budgeted queries
    bypass the cache in both directions (a cutoff prefix is not a
    complete answer, and serving a cached complete answer would
    differ from the cutoff the budget would have produced).

    A deadline that has already passed yields [Failed Deadline]
    without executing anything.

    @raise Invalid_argument if [k <= 0], the limits carry a negative
    budget, or the consistency token is negative. *)

val query_sync :
  ?limits:Limits.t ->
  ?consistency:Consistency.t ->
  ('q, 'e) handle ->
  'q ->
  k:int ->
  'e Response.t
(** [Future.await] of {!query}. *)

val invalidate : ('q, 'e) handle -> 'q -> bool
(** Drop the cached entry for one query, if present.  Version tagging
    makes this unnecessary for correctness; exposed for tests and
    manual flushes. *)
