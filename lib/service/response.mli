(** Typed results of a served query: the answers plus the per-query
    cost, outcome flag, and placement information. *)

type status =
  | Complete          (** the full top-k answer *)
  | Cutoff_budget     (** I/O budget exhausted: a certified prefix *)
  | Cutoff_deadline   (** deadline passed: a certified prefix *)
  | Failed of string  (** the query raised; answers is [[]] *)

type 'e t = {
  answers : 'e list;
      (** sorted by decreasing weight.  On a cutoff this is a
          {e certified prefix} of the true top-k: the heaviest
          [List.length answers] matching elements, exactly. *)
  status : status;
  cost : Topk_em.Stats.snapshot;  (** I/Os charged by this query alone *)
  rounds : int;  (** doubling rounds executed (1 when unbudgeted) *)
  latency : float;  (** submit-to-completion wall time, seconds *)
  worker : int;     (** index of the worker that served it *)
  instance : string;  (** registry name the query ran against *)
  k : int;            (** requested k *)
}

val is_partial : 'e t -> bool
(** [true] on either cutoff status. *)

val combine_status : status -> status -> status
(** The worse of two statuses, for joining fan-out responses (e.g. the
    per-shard legs of one sharded query): severity increases
    [Complete < Cutoff_budget < Cutoff_deadline < Failed _].  Between
    two [Failed] the left message wins. *)

val status_string : status -> string

val pp_status : Format.formatter -> status -> unit

val pp : Format.formatter -> 'e t -> unit
(** Summary line (does not print the answers themselves). *)
