(** Typed results of a served query: the answers plus a per-query cost
    summary, outcome flag, trace linkage, and placement information. *)

type status =
  | Complete          (** the full top-k answer *)
  | Cutoff_budget     (** I/O budget exhausted: a certified prefix *)
  | Cutoff_deadline   (** deadline passed: a certified prefix *)
  | Failed of Error.t (** the query failed; answers is [[]] *)

(** The per-query cost accounting, carried on every response (and
    combinable across fan-out legs) instead of being re-derived ad hoc
    at call sites. *)
type summary = {
  cost : Topk_em.Stats.snapshot;
      (** I/Os charged by this query alone *)
  rounds : int;  (** doubling rounds executed (1 when unbudgeted) *)
  attempts : int;
      (** execution attempts, [> 1] after transient-fault retries *)
  certified : Topk_trace.Certify.verdict option;
      (** outcome of checking the measured I/Os against the instance's
          registered cost model, when one is registered *)
}

type 'e t = {
  answers : 'e list;
      (** sorted by decreasing weight.  On a cutoff this is a
          {e certified prefix} of the true top-k: the heaviest
          [List.length answers] matching elements, exactly. *)
  status : status;
  summary : summary;
  trace_id : int option;
      (** id of the query's trace in {!Topk_trace.Trace.Store}, when
          tracing was enabled while it ran *)
  latency : float;  (** submit-to-completion wall time, seconds *)
  worker : int;     (** index of the worker that served it *)
  instance : string;  (** registry name the query ran against *)
  k : int;            (** requested k *)
  seq_token : int option;
      (** read-your-writes token: the newest update sequence folded
          into the state this answer was computed over.  Replicated
          reads ({!Topk_repl}) and cache hits on versioned instances
          set it; passing it back as [Consistency.At_least] on a
          later read guarantees that read observes at least this
          write prefix.  [None] on unreplicated paths. *)
}

val seq_token : 'e t -> int option

val zero_summary : summary

val cost : 'e t -> Topk_em.Stats.snapshot

val rounds : 'e t -> int

val attempts : 'e t -> int

val certified : 'e t -> Topk_trace.Certify.verdict option

val is_partial : 'e t -> bool
(** [true] on either cutoff status. *)

val combine_status : status -> status -> status
(** The worse of two statuses, for joining fan-out responses (e.g. the
    per-shard legs of one sharded query): severity increases
    [Complete < Cutoff_budget < Cutoff_deadline < Failed _].  Between
    two [Failed] the left message wins. *)

val combine_summary : summary -> summary -> summary
(** Componentwise sum of costs/rounds/attempts; a failing verdict
    dominates the combined [certified]. *)

val status_string : status -> string

val pp_status : Format.formatter -> status -> unit

val pp : Format.formatter -> 'e t -> unit
(** Summary line (does not print the answers themselves). *)
