module Sigs = Topk_core.Sigs
module Stats = Topk_em.Stats
module Tr = Topk_trace.Trace

type info = {
  name : string;
  structure : string;
  size : int;
  space_words : int;
}

(* Write capabilities an updatable instance (one wrapped by
   [Topk_ingest]) attaches to its handle.  Static instances carry
   none. *)
type 'e update_ops = {
  u_insert : 'e -> unit;
  u_delete : 'e -> unit;
  u_freeze : unit -> unit;
}

(* The typed side of an instance.  The closure hides the structure's
   existential type: requests erase to closures, the registry erases to
   [info], and the two meet only here, where the types are known. *)
type ('q, 'e) handle = {
  h_info : info;
  h_exec :
    'q ->
    k:int ->
    budget:int option ->
    deadline:float option ->
    'e list * Response.status * Stats.snapshot * int;
  h_update : 'e update_ops option;
}

type t = {
  mutex : Mutex.t;
  mutable entries : info list;  (* registration order, newest first *)
}

let create () = { mutex = Mutex.create (); entries = [] }

let now () = Unix.gettimeofday ()

(* Staged execution under a cost budget and/or deadline.

   An unconstrained query runs the structure's top-k directly.  A
   constrained query runs rounds of exact top-k' queries for doubling
   k' — each round's answer is the exact set of the k' heaviest
   matching elements, i.e. a *certified prefix* of the true top-k
   (Section 3.2's cost-monitoring idea lifted from prioritized
   reporting to the serving layer).  Between rounds we compare the
   I/Os charged so far against the budget and the wall clock against
   the deadline; on violation the freshest prefix is returned, flagged,
   instead of letting an expensive query stall its worker.  Doubling
   keeps the total cost within a constant factor of the final round. *)
let exec (type s q e)
    (module T : Sigs.TOPK
      with type t = s and type P.query = q and type P.elem = e)
    (structure : s) (q : q) ~k ~budget ~deadline =
  (* Bracket the query with [round_carry] so its scan cost is charged
     in full ([ceil (t / B)]) on this domain: per-query costs are then
     independent of scheduling, and per-domain totals are exactly the
     sum of the costs of the queries each worker ran. *)
  Stats.round_carry ();
  let before = Stats.snapshot () in
  let cost () =
    Stats.round_carry ();
    Stats.diff (Stats.snapshot ()) before
  in
  match (budget, deadline) with
  | None, None ->
      let answers = T.query structure q ~k in
      (answers, Response.Complete, cost (), 1)
  | _ ->
      let over_budget () =
        match budget with
        | None -> false
        | Some b -> (Stats.snapshot ()).Stats.ios - before.Stats.ios >= b
      in
      let over_deadline () =
        match deadline with None -> false | Some d -> now () > d
      in
      if over_deadline () then ([], Response.Cutoff_deadline, cost (), 0)
      else if (match budget with Some b -> b <= 0 | None -> false) then
        ([], Response.Cutoff_budget, cost (), 0)
      else begin
        let rec round k' rounds =
          let answers =
            Tr.with_span "exec.round"
              ~attrs:[ ("k'", Tr.Int k'); ("round", Tr.Int rounds) ]
              (fun () -> T.query structure q ~k:k')
          in
          if k' >= k || List.length answers < k' then
            (answers, Response.Complete, rounds)
          else if over_budget () then begin
            Tr.event "exec.cutoff" ~attrs:[ ("by", Tr.Str "budget") ];
            (answers, Response.Cutoff_budget, rounds)
          end
          else if over_deadline () then begin
            Tr.event "exec.cutoff" ~attrs:[ ("by", Tr.Str "deadline") ];
            (answers, Response.Cutoff_deadline, rounds)
          end
          else round (min k (2 * k')) (rounds + 1)
        in
        let answers, status, rounds = round 1 1 in
        (answers, status, cost (), rounds)
      end

let register (type s q e) ?update t ~name
    (module T : Sigs.TOPK
      with type t = s and type P.query = q and type P.elem = e)
    (structure : s) : (q, e) handle =
  let info =
    {
      name;
      structure = T.name;
      size = T.size structure;
      space_words = T.space_words structure;
    }
  in
  Mutex.protect t.mutex (fun () ->
      (match List.find_opt (fun i -> String.equal i.name name) t.entries with
      | Some prev ->
          invalid_arg
            (Printf.sprintf
               "Registry.register: duplicate instance %S (already registered \
                as %s, n=%d)"
               name prev.structure prev.size)
      | None -> ());
      t.entries <- info :: t.entries);
  {
    h_info = info;
    h_exec =
      (fun q ~k ~budget ~deadline ->
        exec (module T) structure q ~k ~budget ~deadline);
    h_update = update;
  }

let info h = h.h_info

let h_exec h = h.h_exec

let updatable h = Option.is_some h.h_update

let update_ops h op =
  match h.h_update with
  | Some ops -> ops
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.%s: instance %S is static (registered \
                         without update support)"
           op h.h_info.name)

let insert h e = (update_ops h "insert").u_insert e

let delete h e = (update_ops h "delete").u_delete e

let freeze h = (update_ops h "freeze").u_freeze ()

let list t = Mutex.protect t.mutex (fun () -> List.rev t.entries)

(* Edit distance for the miss suggestions (plain Levenshtein; names
   are short, the registry is small, and misses are cold paths). *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <-
        min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let resolve t name =
  match
    Mutex.protect t.mutex (fun () ->
        List.find_opt (fun i -> String.equal i.name name) t.entries)
  with
  | Some i -> Ok i
  | None ->
      let names = List.map (fun i -> i.name) (list t) in
      let suggestions =
        names
        |> List.map (fun n -> (edit_distance name n, n))
        |> List.sort compare
        |> List.map snd
      in
      Error (Error.Not_found suggestions)

let mem t name = Result.is_ok (resolve t name)

let pp_info ppf i =
  Format.fprintf ppf "@[<h>%s: %s, n=%d, %d words@]" i.name i.structure i.size
    i.space_words
