(* Lock-free serving metrics: plain [Atomic.t] counters and power-of-two
   bucketed histograms.  Workers record without ever taking a lock, so
   metrics cannot become a point of contention in the pool. *)

module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0

  let incr t = Atomic.incr t

  let add t n = ignore (Atomic.fetch_and_add t n)

  let get t = Atomic.get t
end

module Gauge = struct
  type t = int Atomic.t

  let create () = Atomic.make 0

  let incr t = Atomic.incr t

  let decr t = Atomic.decr t

  let set t v = Atomic.set t v

  let get t = Atomic.get t
end

module Histogram = struct
  (* Bucket [0] holds the observation [0]; bucket [i >= 1] holds
     observations in [2^(i-1), 2^i).  63 buckets cover every
     non-negative OCaml int. *)
  let buckets = 63

  type t = {
    counts : int Atomic.t array;
    sum : int Atomic.t;
    count : int Atomic.t;
    max : int Atomic.t;
  }

  let create () =
    {
      counts = Array.init buckets (fun _ -> Atomic.make 0);
      sum = Atomic.make 0;
      count = Atomic.make 0;
      max = Atomic.make 0;
    }

  let bucket_of v =
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    if v <= 0 then 0 else min (buckets - 1) (bits 0 v)

  (* Upper edge of bucket [i] (inclusive): the value reported for
     percentiles falling in that bucket. *)
  let upper_of i = if i = 0 then 0 else (1 lsl i) - 1

  let rec update_max t v =
    let cur = Atomic.get t.max in
    if v > cur && not (Atomic.compare_and_set t.max cur v) then update_max t v

  let observe t v =
    let v = max 0 v in
    Atomic.incr t.counts.(bucket_of v);
    ignore (Atomic.fetch_and_add t.sum v);
    Atomic.incr t.count;
    update_max t v

  let count t = Atomic.get t.count

  let sum t = Atomic.get t.sum

  let max_value t = Atomic.get t.max

  let mean t =
    let n = count t in
    if n = 0 then 0. else float_of_int (sum t) /. float_of_int n

  (* Approximate percentile: the upper edge of the first bucket whose
     cumulative count reaches [q * count], clamped by the exact max. *)
  let percentile t q =
    let n = count t in
    if n = 0 then 0
    else begin
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      let rank = Stdlib.max 1 (Stdlib.min n rank) in
      let rec go i acc =
        if i >= buckets then max_value t
        else
          let acc = acc + Atomic.get t.counts.(i) in
          if acc >= rank then Stdlib.min (upper_of i) (max_value t)
          else go (i + 1) acc
      in
      go 0 0
    end
end

type t = {
  started : float;
  submitted : Counter.t;
  completed : Counter.t;
  rejected : Counter.t;      (* admission control: queue full on try_submit *)
  failed : Counter.t;        (* queries that raised *)
  cutoff_budget : Counter.t;
  cutoff_deadline : Counter.t;
  (* supervision / fault tolerance *)
  faults_injected : Counter.t; (* transient EM faults that escaped a query *)
  retries : Counter.t;         (* re-enqueues after a transient fault *)
  respawns : Counter.t;        (* crashed worker domains replaced *)
  aborted : Counter.t;         (* futures resolved Failed at shutdown *)
  breaker_rejected : Counter.t;(* admissions refused by an open breaker *)
  breaker_opens : Counter.t;   (* times any lane's breaker tripped open *)
  breaker_state : Gauge.t;     (* interactive lane: 0 closed / 1 half-open / 2 open *)
  queue_depth : Gauge.t;       (* total queued across lanes *)
  inflight : Gauge.t;
  latency_us : Histogram.t;  (* submit-to-response, microseconds *)
  ios : Histogram.t;         (* EM-model I/Os per query *)
  batch : Histogram.t;       (* jobs popped per worker wakeup *)
  (* QoS lanes (recorded by the executor; arrays indexed by Lane.index) *)
  lane_depth : Gauge.t array;         (* queued per lane *)
  lane_admitted : Counter.t array;    (* submissions accepted per lane *)
  lane_shed : Counter.t array;        (* queue-full + breaker rejections *)
  lane_breaker_state : Gauge.t array; (* per-lane breaker state code *)
  lane_latency_us : Histogram.t array;(* submit-to-response per lane *)
  lane_ios : Counter.t array;         (* charged I/Os of final outcomes *)
  lane_wait_rounds : Histogram.t array;(* dispatch rounds waited in queue *)
  (* shard fan-out (recorded by Topk_shard.Scatter) *)
  sharded_queries : Counter.t;   (* logical queries fanned out *)
  shards_pruned : Counter.t;     (* shard legs skipped by max-query bound *)
  fanout : Histogram.t;          (* shard jobs submitted per logical query *)
  shard_latency_us : Histogram.t;(* per-shard leg latency *)
  shard_ios : Histogram.t;       (* per-shard leg EM I/Os *)
  (* cost certification (recorded by Request when a model is registered) *)
  cert_checked : Counter.t;      (* responses checked against their bound *)
  cert_violations : Counter.t;   (* checks where measured > bound *)
  (* live ingestion (recorded by Topk_ingest) *)
  updates : Counter.t;           (* inserts + deletes accepted *)
  seals : Counter.t;             (* buffers sealed into level-0 runs *)
  merges : Counter.t;            (* background level merges completed *)
  tombstones : Counter.t;        (* delete tombstones recorded *)
  epoch_lag : Gauge.t;           (* current epoch - oldest pinned epoch *)
  merge_latency_us : Histogram.t;(* background merge wall time *)
  (* durability (recorded by Topk_durable) *)
  wal_appends : Counter.t;       (* records appended to the WAL *)
  wal_fsyncs : Counter.t;        (* group-commit fsync batches flushed *)
  checkpoints : Counter.t;       (* snapshot+manifest generations published *)
  recoveries : Counter.t;        (* successful crash recoveries *)
  torn_tails : Counter.t;        (* torn WAL tails truncated at recovery *)
  checksum_failures : Counter.t; (* CRC mismatches detected anywhere *)
  scrubs : Counter.t;            (* background scrub passes completed *)
  recovery_time_us : Histogram.t;(* manifest-to-replayed recovery wall time *)
  (* replication (recorded by Topk_repl) *)
  repl_frames_shipped : Counter.t; (* WAL frames sent to replicas *)
  repl_frames_acked : Counter.t;   (* cumulative-ack advances received *)
  repl_frames_dropped : Counter.t; (* messages lost in the transport *)
  snapshot_installs : Counter.t;   (* replicas caught up by snapshot install *)
  failovers : Counter.t;           (* primary promotions completed *)
  replica_lag : Gauge.t;           (* max replica lag, in op sequences *)
  (* answer cache (recorded by Client / Topk_cache integrations) *)
  cache_hits : Counter.t;        (* lookups served from the cache *)
  cache_misses : Counter.t;      (* lookups that fell through *)
  cache_evictions : Counter.t;   (* entries dropped by LRU/TTL pressure *)
  cache_bypasses : Counter.t;    (* answers too cheap to admit *)
  cache_hit_age_us : Histogram.t;(* age of served entries, microseconds *)
}

let create () =
  {
    started = Unix.gettimeofday ();
    submitted = Counter.create ();
    completed = Counter.create ();
    rejected = Counter.create ();
    failed = Counter.create ();
    cutoff_budget = Counter.create ();
    cutoff_deadline = Counter.create ();
    faults_injected = Counter.create ();
    retries = Counter.create ();
    respawns = Counter.create ();
    aborted = Counter.create ();
    breaker_rejected = Counter.create ();
    breaker_opens = Counter.create ();
    breaker_state = Gauge.create ();
    queue_depth = Gauge.create ();
    inflight = Gauge.create ();
    latency_us = Histogram.create ();
    ios = Histogram.create ();
    batch = Histogram.create ();
    lane_depth = Array.init Lane.count (fun _ -> Gauge.create ());
    lane_admitted = Array.init Lane.count (fun _ -> Counter.create ());
    lane_shed = Array.init Lane.count (fun _ -> Counter.create ());
    lane_breaker_state = Array.init Lane.count (fun _ -> Gauge.create ());
    lane_latency_us = Array.init Lane.count (fun _ -> Histogram.create ());
    lane_ios = Array.init Lane.count (fun _ -> Counter.create ());
    lane_wait_rounds = Array.init Lane.count (fun _ -> Histogram.create ());
    sharded_queries = Counter.create ();
    shards_pruned = Counter.create ();
    fanout = Histogram.create ();
    shard_latency_us = Histogram.create ();
    shard_ios = Histogram.create ();
    cert_checked = Counter.create ();
    cert_violations = Counter.create ();
    updates = Counter.create ();
    seals = Counter.create ();
    merges = Counter.create ();
    tombstones = Counter.create ();
    epoch_lag = Gauge.create ();
    merge_latency_us = Histogram.create ();
    wal_appends = Counter.create ();
    wal_fsyncs = Counter.create ();
    checkpoints = Counter.create ();
    recoveries = Counter.create ();
    torn_tails = Counter.create ();
    checksum_failures = Counter.create ();
    scrubs = Counter.create ();
    recovery_time_us = Histogram.create ();
    repl_frames_shipped = Counter.create ();
    repl_frames_acked = Counter.create ();
    repl_frames_dropped = Counter.create ();
    snapshot_installs = Counter.create ();
    failovers = Counter.create ();
    replica_lag = Gauge.create ();
    cache_hits = Counter.create ();
    cache_misses = Counter.create ();
    cache_evictions = Counter.create ();
    cache_bypasses = Counter.create ();
    cache_hit_age_us = Histogram.create ();
  }

let cache_hit_rate t =
  let h = Counter.get t.cache_hits and m = Counter.get t.cache_misses in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let uptime t = Unix.gettimeofday () -. t.started

let qps t =
  let dt = uptime t in
  if dt <= 0. then 0. else float_of_int (Counter.get t.completed) /. dt

let cutoff_rate t =
  let n = Counter.get t.completed in
  if n = 0 then 0.
  else
    float_of_int (Counter.get t.cutoff_budget + Counter.get t.cutoff_deadline)
    /. float_of_int n

(* Text exposition, one metric per line ([name value]), followed by
   histogram summaries — ready to be scraped or read by a human. *)
let report t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let histo name h =
    line "%s_count %d" name (Histogram.count h);
    line "%s_sum %d" name (Histogram.sum h);
    line "%s_mean %.1f" name (Histogram.mean h);
    line "%s_p50 %d" name (Histogram.percentile h 0.50);
    line "%s_p95 %d" name (Histogram.percentile h 0.95);
    line "%s_p99 %d" name (Histogram.percentile h 0.99);
    line "%s_max %d" name (Histogram.max_value h)
  in
  line "topk_uptime_seconds %.3f" (uptime t);
  line "topk_queries_submitted %d" (Counter.get t.submitted);
  line "topk_queries_completed %d" (Counter.get t.completed);
  line "topk_queries_rejected %d" (Counter.get t.rejected);
  line "topk_queries_failed %d" (Counter.get t.failed);
  line "topk_queries_cutoff_budget %d" (Counter.get t.cutoff_budget);
  line "topk_queries_cutoff_deadline %d" (Counter.get t.cutoff_deadline);
  line "topk_faults_injected %d" (Counter.get t.faults_injected);
  line "topk_retries %d" (Counter.get t.retries);
  line "topk_worker_respawns %d" (Counter.get t.respawns);
  line "topk_queries_aborted %d" (Counter.get t.aborted);
  line "topk_breaker_rejected %d" (Counter.get t.breaker_rejected);
  line "topk_breaker_opens %d" (Counter.get t.breaker_opens);
  line "topk_breaker_state %d" (Gauge.get t.breaker_state);
  line "topk_cutoff_rate %.4f" (cutoff_rate t);
  line "topk_qps %.1f" (qps t);
  line "topk_queue_depth %d" (Gauge.get t.queue_depth);
  line "topk_inflight %d" (Gauge.get t.inflight);
  histo "topk_latency_us" t.latency_us;
  histo "topk_ios" t.ios;
  histo "topk_batch_size" t.batch;
  List.iter
    (fun lane ->
      let i = Lane.index lane in
      let pre = "topk_lane_" ^ Lane.name lane in
      line "%s_depth %d" pre (Gauge.get t.lane_depth.(i));
      line "%s_admitted %d" pre (Counter.get t.lane_admitted.(i));
      line "%s_shed %d" pre (Counter.get t.lane_shed.(i));
      line "%s_breaker_state %d" pre (Gauge.get t.lane_breaker_state.(i));
      line "%s_ios %d" pre (Counter.get t.lane_ios.(i));
      histo (pre ^ "_latency_us") t.lane_latency_us.(i);
      histo (pre ^ "_wait_rounds") t.lane_wait_rounds.(i))
    Lane.all;
  line "topk_sharded_queries %d" (Counter.get t.sharded_queries);
  line "topk_shards_pruned %d" (Counter.get t.shards_pruned);
  histo "topk_fanout" t.fanout;
  histo "topk_shard_latency_us" t.shard_latency_us;
  histo "topk_shard_ios" t.shard_ios;
  line "topk_cert_checked %d" (Counter.get t.cert_checked);
  line "topk_cert_violations %d" (Counter.get t.cert_violations);
  line "topk_ingest_updates %d" (Counter.get t.updates);
  line "topk_ingest_seals %d" (Counter.get t.seals);
  line "topk_ingest_merges %d" (Counter.get t.merges);
  line "topk_ingest_tombstones %d" (Counter.get t.tombstones);
  line "topk_ingest_epoch_lag %d" (Gauge.get t.epoch_lag);
  histo "topk_ingest_merge_latency_us" t.merge_latency_us;
  line "topk_wal_appends %d" (Counter.get t.wal_appends);
  line "topk_wal_fsyncs %d" (Counter.get t.wal_fsyncs);
  line "topk_checkpoints %d" (Counter.get t.checkpoints);
  line "topk_recoveries %d" (Counter.get t.recoveries);
  line "topk_torn_tails %d" (Counter.get t.torn_tails);
  line "topk_checksum_failures %d" (Counter.get t.checksum_failures);
  line "topk_scrubs %d" (Counter.get t.scrubs);
  histo "topk_recovery_time_us" t.recovery_time_us;
  line "topk_repl_frames_shipped %d" (Counter.get t.repl_frames_shipped);
  line "topk_repl_frames_acked %d" (Counter.get t.repl_frames_acked);
  line "topk_repl_frames_dropped %d" (Counter.get t.repl_frames_dropped);
  line "topk_repl_snapshot_installs %d" (Counter.get t.snapshot_installs);
  line "topk_repl_failovers %d" (Counter.get t.failovers);
  line "topk_repl_replica_lag %d" (Gauge.get t.replica_lag);
  line "topk_cache_hits %d" (Counter.get t.cache_hits);
  line "topk_cache_misses %d" (Counter.get t.cache_misses);
  line "topk_cache_evictions %d" (Counter.get t.cache_evictions);
  line "topk_cache_bypasses %d" (Counter.get t.cache_bypasses);
  line "topk_cache_hit_rate %.4f" (cache_hit_rate t);
  histo "topk_cache_hit_age_us" t.cache_hit_age_us;
  line "topk_traces_stored %d" (Topk_trace.Trace.Store.length ());
  line "topk_traces_total %d" (Topk_trace.Trace.Store.total ());
  Buffer.contents buf
