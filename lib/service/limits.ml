type horizon = Unbounded | At of float | Within of float

type t = { budget : int option; horizon : horizon }

let none = { budget = None; horizon = Unbounded }

let check_budget = function
  | Some b when b < 0 ->
      invalid_arg (Printf.sprintf "Limits: budget must be >= 0 (got %d)" b)
  | _ -> ()

let make ?budget ?timeout ?deadline () =
  check_budget budget;
  let horizon =
    match (timeout, deadline) with
    | Some _, Some _ ->
        invalid_arg "Limits.make: pass either ~timeout or ~deadline, not both"
    | Some s, None -> Within s
    | None, Some d -> At d
    | None, None -> Unbounded
  in
  { budget; horizon }

let with_budget b t =
  check_budget (Some b);
  { t with budget = Some b }

let with_timeout s t = { t with horizon = Within s }

let with_deadline d t = { t with horizon = At d }

let unlimited_budget t = { t with budget = None }

let is_none t = t.budget = None && t.horizon = Unbounded

let resolve t ~now =
  let deadline =
    match t.horizon with
    | Unbounded -> None
    | At d -> Some d
    | Within s -> Some (now +. s)
  in
  (t.budget, deadline)

let pp ppf t =
  let b =
    match t.budget with None -> "inf" | Some b -> string_of_int b
  in
  let h =
    match t.horizon with
    | Unbounded -> "unbounded"
    | At d -> Printf.sprintf "at %.3f" d
    | Within s -> Printf.sprintf "within %.3fs" s
  in
  Format.fprintf ppf "@[<h>budget=%s horizon=%s@]" b h
