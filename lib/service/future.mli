(** Single-assignment cells ("ivars") used to hand a worker's response
    back to the submitting thread.  Writes and reads may come from
    different domains. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Publish the value and wake all waiters.
    @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when the cell
    is already filled.  Used by the supervision layer, where a request
    may be resolved by either its worker or the shutdown path —
    whichever gets there first wins, the other is a no-op. *)

val await : 'a t -> 'a
(** Block the calling thread until the value is available. *)

val poll : 'a t -> 'a option
(** Non-blocking read. *)

val is_filled : 'a t -> bool

val on_fill : 'a t -> ('a -> unit) -> unit
(** Run [f] with the value once it is available: immediately (on the
    calling domain) if already filled, otherwise on the domain that
    eventually fills the cell, outside the cell's lock.  Callbacks
    run in no guaranteed order and must not fill this future.  The
    {!Client} facade uses this to admit completed pool responses into
    the answer cache without blocking the submitter. *)
