(** Single-assignment cells ("ivars") used to hand a worker's response
    back to the submitting thread.  Writes and reads may come from
    different domains. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Publish the value and wake all waiters.
    @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising when the cell
    is already filled.  Used by the supervision layer, where a request
    may be resolved by either its worker or the shutdown path —
    whichever gets there first wins, the other is a no-op. *)

val await : 'a t -> 'a
(** Block the calling thread until the value is available. *)

val poll : 'a t -> 'a option
(** Non-blocking read. *)

val is_filled : 'a t -> bool
