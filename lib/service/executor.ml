module Stats = Topk_em.Stats

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;  (* signalled on enqueue / shutdown *)
  not_full : Condition.t;   (* signalled when queue space frees up *)
  idle : Condition.t;       (* signalled when the pool fully drains *)
  queue : Request.t Queue.t;
  capacity : int;
  batch_max : int;
  mutable stopping : bool;
  mutable pending : int;  (* queued + in-flight requests *)
  mutable domains : unit Domain.t list;
  worker_ids : int array;  (* Domain ids, written once by each worker *)
  n_workers : int;
  metrics : Metrics.t;
}

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

(* --- worker side --- *)

let record_outcome metrics (o : Request.outcome) =
  let open Metrics in
  Counter.incr metrics.completed;
  (match o.Request.o_status with
  | Response.Complete -> ()
  | Response.Cutoff_budget -> Counter.incr metrics.cutoff_budget
  | Response.Cutoff_deadline -> Counter.incr metrics.cutoff_deadline
  | Response.Failed _ -> Counter.incr metrics.failed);
  Histogram.observe metrics.latency_us
    (int_of_float (o.Request.o_latency *. 1e6));
  Histogram.observe metrics.ios o.Request.o_ios

let pop_batch t =
  Mutex.protect t.mutex (fun () ->
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.not_empty t.mutex
      done;
      let n = min t.batch_max (Queue.length t.queue) in
      let rec pop acc n =
        if n = 0 then List.rev acc else pop (Queue.pop t.queue :: acc) (n - 1)
      in
      let jobs = pop [] n in
      if n > 0 then Condition.broadcast t.not_full;
      jobs)

let rec worker_loop t idx =
  match pop_batch t with
  | [] -> ()  (* stopping and queue drained: exit *)
  | jobs ->
      let open Metrics in
      Histogram.observe t.metrics.batch (List.length jobs);
      List.iter
        (fun job ->
          Gauge.decr t.metrics.queue_depth;
          Gauge.incr t.metrics.inflight;
          let outcome = Request.run job ~worker:idx in
          Gauge.decr t.metrics.inflight;
          record_outcome t.metrics outcome;
          Mutex.protect t.mutex (fun () ->
              t.pending <- t.pending - 1;
              if t.pending = 0 then Condition.broadcast t.idle))
        jobs;
      worker_loop t idx

let worker_main t idx =
  t.worker_ids.(idx) <- (Domain.self () :> int);
  worker_loop t idx

(* --- pool management --- *)

let create ?workers ?(queue_capacity = 1024) ?(batch_max = 32) () =
  let n_workers =
    match workers with None -> default_workers () | Some w -> w
  in
  if n_workers < 1 then invalid_arg "Executor.create: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Executor.create: queue_capacity must be >= 1";
  if batch_max < 1 then invalid_arg "Executor.create: batch_max must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      capacity = queue_capacity;
      batch_max;
      stopping = false;
      pending = 0;
      domains = [];
      worker_ids = Array.make n_workers (-1);
      n_workers;
      metrics = Metrics.create ();
    }
  in
  t.domains <-
    List.init n_workers (fun i -> Domain.spawn (fun () -> worker_main t i));
  t

let worker_count t = t.n_workers

let metrics t = t.metrics

let queue_depth t = Mutex.protect t.mutex (fun () -> Queue.length t.queue)

(* --- submission --- *)

exception Shut_down

let enqueue_blocking t req =
  Mutex.protect t.mutex (fun () ->
      if t.stopping then raise Shut_down;
      while Queue.length t.queue >= t.capacity && not t.stopping do
        Condition.wait t.not_full t.mutex
      done;
      if t.stopping then raise Shut_down;
      Queue.push req t.queue;
      t.pending <- t.pending + 1;
      Metrics.Gauge.incr t.metrics.queue_depth;
      Metrics.Counter.incr t.metrics.submitted;
      Condition.signal t.not_empty)

let enqueue_nonblocking t req =
  let accepted =
    Mutex.protect t.mutex (fun () ->
        if t.stopping then raise Shut_down;
        if Queue.length t.queue >= t.capacity then false
        else begin
          Queue.push req t.queue;
          t.pending <- t.pending + 1;
          Metrics.Gauge.incr t.metrics.queue_depth;
          Metrics.Counter.incr t.metrics.submitted;
          Condition.signal t.not_empty;
          true
        end)
  in
  if not accepted then Metrics.Counter.incr t.metrics.rejected;
  accepted

let submit t handle ?budget ?timeout q ~k =
  let req, fut = Request.make handle ?budget ?timeout q ~k in
  enqueue_blocking t req;
  fut

let try_submit t handle ?budget ?timeout q ~k =
  let req, fut = Request.make handle ?budget ?timeout q ~k in
  if enqueue_nonblocking t req then Some fut else None

let submit_batch t handle ?budget ?timeout queries ~k =
  List.map (fun q -> submit t handle ?budget ?timeout q ~k) queries

(* --- lifecycle --- *)

let drain t =
  Mutex.protect t.mutex (fun () ->
      while t.pending > 0 do
        Condition.wait t.idle t.mutex
      done)

let shutdown t =
  let domains =
    Mutex.protect t.mutex (fun () ->
        t.stopping <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full;
        let d = t.domains in
        t.domains <- [];
        d)
  in
  List.iter Domain.join domains

(* --- per-worker EM accounting --- *)

let worker_stats t =
  let ids = Array.to_list t.worker_ids in
  List.filter_map
    (fun (d, s) ->
      match List.find_index (Int.equal d) ids with
      | Some idx -> Some (idx, s)
      | None -> None)
    (Stats.per_domain ())

let aggregate_stats t =
  List.fold_left
    (fun acc (_, s) -> Stats.add acc s)
    Stats.zero_snapshot (worker_stats t)
