module Stats = Topk_em.Stats

(* --- retry policy --- *)

type retry_policy = {
  max_retries : int;
  base_backoff : float;
  max_backoff : float;
  jitter : float;
}

let default_retry_policy =
  { max_retries = 3; base_backoff = 0.001; max_backoff = 0.05; jitter = 0.5 }

(* --- worker slots ---

   One slot per worker index.  The domain occupying a slot changes over
   the pool's lifetime: a crashed worker is replaced by the supervisor,
   and [ids] accumulates the Domain.ids of every domain that ever
   served the slot, so per-worker EM accounting survives respawns. *)

type slot = {
  mutable dom : unit Domain.t option;  (* mutated by supervisor/shutdown only *)
  mutable ids : int list;              (* under [t.mutex] *)
  alive : bool Atomic.t;
  crashed : bool Atomic.t;  (* exited abnormally; supervisor will respawn *)
  kill : bool Atomic.t;     (* chaos hook: die at the next queue pop *)
}

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;  (* signalled on enqueue / kill / shutdown *)
  not_full : Condition.t;   (* signalled when queue space frees up *)
  idle : Condition.t;       (* signalled when the pool fully drains *)
  sched : Request.t Sched.t;  (* the multi-lane queue; under [mutex] *)
  mutable parked : (float * Request.t) list;  (* backoff: (ready_at, req) *)
  batch_max : int;
  retry : retry_policy;
  rand : Random.State.t;  (* backoff jitter; under [mutex] *)
  mutable stopping : bool;
  mutable pending : int;  (* queued + parked + in-flight requests *)
  slots : slot array;
  mutable supervisor : unit Domain.t option;
  n_workers : int;
  metrics : Metrics.t;
  breakers : Breaker.t array;
      (* one per lane (Lane.index), so a wedged background job cannot
         trip admission for interactive reads; in unified mode every
         entry is the same breaker — the old single-queue cross-talk,
         kept as the sched-bench baseline *)
}

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let now () = Unix.gettimeofday ()

(* --- worker side --- *)

(* Raised (on purpose) by a worker whose [kill] flag is set: simulates
   a worker domain dying between jobs.  It escapes every guard so the
   domain really terminates; the supervisor respawns it. *)
exception Killed

let record_outcome metrics ~lane (o : Request.outcome) =
  let open Metrics in
  let li = Lane.index lane in
  Counter.incr metrics.completed;
  (match o.Request.o_status with
  | Response.Complete -> ()
  | Response.Cutoff_budget -> Counter.incr metrics.cutoff_budget
  | Response.Cutoff_deadline -> Counter.incr metrics.cutoff_deadline
  | Response.Failed _ -> Counter.incr metrics.failed);
  (match o.Request.o_verdict with
  | Some ok ->
      Counter.incr metrics.cert_checked;
      if not ok then Counter.incr metrics.cert_violations
  | None -> ());
  Histogram.observe metrics.latency_us
    (int_of_float (o.Request.o_latency *. 1e6));
  Histogram.observe metrics.lane_latency_us.(li)
    (int_of_float (o.Request.o_latency *. 1e6));
  Histogram.observe metrics.ios o.Request.o_ios;
  Counter.add metrics.lane_ios.(li) o.Request.o_ios

let finish_pending t =
  Mutex.protect t.mutex (fun () ->
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle)

let lane_of job = (Request.spec job).Request.lane

(* A request reached its final resolution: metrics, the breaker of its
   own lane (so a failing merge storm cannot open the interactive
   breaker), pending. *)
let record_final t job (o : Request.outcome) =
  let lane = lane_of job in
  record_outcome t.metrics ~lane o;
  let ok =
    match o.Request.o_status with Response.Failed _ -> false | _ -> true
  in
  Breaker.record t.breakers.(Lane.index lane) ~now:(now ()) ~ok;
  finish_pending t

(* Capped exponential backoff with jitter: attempt [a] (1-based) waits
   [min max_backoff (base * 2^(a-1))], scaled by a uniform factor in
   [1-jitter, 1+jitter] so retried requests don't reconverge in
   lockstep on a struggling resource. *)
let backoff_delay t attempt =
  let p = t.retry in
  let d =
    Float.min p.max_backoff (p.base_backoff *. (2. ** float_of_int (attempt - 1)))
  in
  if p.jitter <= 0. then d
  else
    let r = Mutex.protect t.mutex (fun () -> Random.State.float t.rand 1.) in
    Float.max 0. (d *. (1. -. p.jitter +. (2. *. p.jitter *. r)))

(* Park a request for retry; if the pool is stopping, resolve it now. *)
let park t job delay =
  let decision =
    Mutex.protect t.mutex (fun () ->
        if t.stopping then `Abort
        else begin
          t.parked <- (now () +. delay, job) :: t.parked;
          `Parked
        end)
  in
  match decision with
  | `Parked -> ()
  | `Abort ->
      Metrics.Counter.incr t.metrics.aborted;
      record_final t job
        (Request.abort job ~worker:(-1) ~reason:(Error.Failed "shutdown"))

let process_job t idx job =
  Metrics.Gauge.decr t.metrics.queue_depth;
  Metrics.Gauge.decr t.metrics.lane_depth.(Lane.index (lane_of job));
  Metrics.Gauge.incr t.metrics.inflight;
  let res =
    (* Supervision guard: *nothing* a handler raises may kill the
       worker domain or leak [pending] — a broken query becomes a
       [Failed] response.  (Request.run already converts handler
       exceptions; this net also covers failures in the response path
       itself.) *)
    try Request.run job ~worker:idx
    with e ->
      Request.Completed
        (Request.abort job ~worker:idx
           ~reason:(Error.Failed ("uncaught: " ^ Printexc.to_string e)))
  in
  Metrics.Gauge.decr t.metrics.inflight;
  match res with
  | Request.Completed outcome -> record_final t job outcome
  | Request.Transient msg ->
      Metrics.Counter.incr t.metrics.faults_injected;
      let attempt = Request.attempts job in
      if attempt > t.retry.max_retries then begin
        let reason =
          Error.Failed
            (Printf.sprintf "transient fault persisted after %d attempts: %s"
               attempt msg)
        in
        record_final t job (Request.abort job ~worker:idx ~reason)
      end
      else begin
        Metrics.Counter.incr t.metrics.retries;
        park t job (backoff_delay t attempt)
      end

let pop_batch t idx =
  let slot = t.slots.(idx) in
  Mutex.protect t.mutex (fun () ->
      while
        Sched.is_empty t.sched && not t.stopping && not (Atomic.get slot.kill)
      do
        Condition.wait t.not_empty t.mutex
      done;
      if Atomic.get slot.kill then raise Killed;
      if t.stopping then []
        (* New backlog is not served once stopping: the shutdown sweep
           resolves whatever is still queued as [Failed "shutdown"]. *)
      else
        match Sched.pop_batch t.sched ~max:t.batch_max with
        | None -> assert false (* the wait loop held the mutex: non-empty *)
        | Some (_, popped) ->
            List.iter
              (fun (job, waited) ->
                Metrics.Histogram.observe
                  t.metrics.lane_wait_rounds.(Lane.index (lane_of job))
                  waited)
              popped;
            Condition.broadcast t.not_full;
            List.map fst popped)

let rec worker_loop t idx =
  match pop_batch t idx with
  | [] -> ()  (* stopping: exit cleanly *)
  | jobs ->
      Metrics.Histogram.observe t.metrics.batch (List.length jobs);
      List.iter (process_job t idx) jobs;
      worker_loop t idx

let worker_main t idx =
  let slot = t.slots.(idx) in
  Mutex.protect t.mutex (fun () ->
      slot.ids <- (Domain.self () :> int) :: slot.ids);
  match worker_loop t idx with
  | () ->
      (* Clean exit (pool stopping). *)
      Atomic.set slot.alive false
  | exception _ ->
      (* Abnormal exit — [Killed] or a defect in the loop itself.
         Publish the crash; the supervisor joins this domain and
         spawns a replacement into the same slot. *)
      Atomic.set slot.crashed true;
      Atomic.set slot.alive false

(* --- supervisor ---

   A dedicated domain that (a) moves parked retries whose backoff has
   elapsed back onto the queue and (b) respawns crashed workers.  It
   polls at sub-millisecond cadence; both duties are rare, so the cost
   is one mutex acquisition per tick. *)

let supervisor_tick t =
  let due =
    Mutex.protect t.mutex (fun () ->
        if t.parked = [] then 0
        else begin
          let ts = now () in
          let due, later =
            List.partition (fun (ready, _) -> ready <= ts) t.parked
          in
          t.parked <- later;
          List.iter
            (fun (_, job) ->
              (* Retries bypass the capacity check: they already hold a
                 pending slot, and blocking the supervisor on a full
                 lane would stall respawns. *)
              Sched.push t.sched (lane_of job) job;
              Metrics.Gauge.incr t.metrics.queue_depth;
              Metrics.Gauge.incr
                t.metrics.lane_depth.(Lane.index (lane_of job));
              Condition.signal t.not_empty)
            due;
          List.length due
        end)
  in
  ignore (due : int);
  Array.iteri
    (fun idx slot ->
      if Atomic.get slot.crashed && not (Atomic.get slot.alive) then begin
        (match slot.dom with Some d -> Domain.join d | None -> ());
        Atomic.set slot.crashed false;
        Atomic.set slot.kill false;
        Atomic.set slot.alive true;
        Metrics.Counter.incr t.metrics.respawns;
        slot.dom <- Some (Domain.spawn (fun () -> worker_main t idx))
      end)
    t.slots

let supervisor_loop t =
  let rec loop () =
    if Mutex.protect t.mutex (fun () -> t.stopping) then ()
    else begin
      supervisor_tick t;
      Unix.sleepf 5e-4;
      loop ()
    end
  in
  loop ()

(* --- pool management --- *)

let create ?workers ?(queue_capacity = 1024) ?(batch_max = 32)
    ?(retry = default_retry_policy) ?breaker ?lanes ?(seed = 0x5EED) () =
  let n_workers =
    match workers with None -> default_workers () | Some w -> w
  in
  if n_workers < 1 then invalid_arg "Executor.create: workers must be >= 1";
  if queue_capacity < 1 then
    invalid_arg "Executor.create: queue_capacity must be >= 1";
  if batch_max < 1 then invalid_arg "Executor.create: batch_max must be >= 1";
  if retry.max_retries < 0 then
    invalid_arg "Executor.create: max_retries must be >= 0";
  if not (retry.base_backoff >= 0. && retry.max_backoff >= 0.) then
    invalid_arg "Executor.create: backoff must be >= 0";
  if not (retry.jitter >= 0. && retry.jitter <= 1.) then
    invalid_arg "Executor.create: jitter must be in [0,1]";
  let lane_cfg =
    match lanes with
    | Some cfg ->
        Sched.validate cfg;
        cfg
    | None -> Sched.default_config ~capacity:queue_capacity ()
  in
  let metrics = Metrics.create () in
  let mk_breaker lane =
    Breaker.create ?policy:breaker
      ~on_transition:(fun st ->
        let code = Breaker.state_code st in
        Metrics.Gauge.set
          metrics.Metrics.lane_breaker_state.(Lane.index lane) code;
        (* The legacy gauge tracks the interactive lane — the one
           admission callers care about. *)
        if lane = Lane.Interactive then
          Metrics.Gauge.set metrics.Metrics.breaker_state code;
        if st = Breaker.Open then
          Metrics.Counter.incr metrics.Metrics.breaker_opens)
      ()
  in
  let breakers =
    if lane_cfg.Sched.unified then
      (* One shared breaker: background failures count toward query
         admission, exactly the cross-talk the lanes exist to remove. *)
      Array.make Lane.count (mk_breaker Lane.Interactive)
    else Array.init Lane.count (fun i -> mk_breaker (Lane.of_index i))
  in
  let sched =
    Sched.create lane_cfg ~deadline:(fun job ->
        (Request.spec job).Request.deadline)
  in
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      idle = Condition.create ();
      sched;
      parked = [];
      batch_max;
      retry;
      rand = Random.State.make [| seed |];
      stopping = false;
      pending = 0;
      slots =
        Array.init n_workers (fun _ ->
            {
              dom = None;
              ids = [];
              alive = Atomic.make true;
              crashed = Atomic.make false;
              kill = Atomic.make false;
            });
      supervisor = None;
      n_workers;
      metrics;
      breakers;
    }
  in
  Array.iteri
    (fun i slot -> slot.dom <- Some (Domain.spawn (fun () -> worker_main t i)))
    t.slots;
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  t

let worker_count t = t.n_workers

let metrics t = t.metrics

let breaker_state t = Breaker.state t.breakers.(Lane.index Lane.Interactive)

let lane_breaker_state t lane = Breaker.state t.breakers.(Lane.index lane)

let queue_depth t = Mutex.protect t.mutex (fun () -> Sched.length t.sched)

let lane_depth t lane =
  Mutex.protect t.mutex (fun () -> Sched.lane_depth t.sched lane)

let lanes t = Sched.config t.sched

let retry_policy t = t.retry

(* --- chaos hook --- *)

let inject_worker_crash t idx =
  if idx < 0 || idx >= t.n_workers then
    invalid_arg
      (Printf.sprintf "Executor.inject_worker_crash: no worker %d" idx);
  Atomic.set t.slots.(idx).kill true;
  Mutex.protect t.mutex (fun () -> Condition.broadcast t.not_empty)

(* --- submission --- *)

let shut_down () = Error.fail (Error.Failed "shutdown")

let admit t lane =
  if not (Breaker.admit t.breakers.(Lane.index lane) ~now:(now ())) then begin
    Metrics.Counter.incr t.metrics.breaker_rejected;
    Metrics.Counter.incr t.metrics.lane_shed.(Lane.index lane);
    Error.fail Error.Overloaded
  end

let accept_locked t lane req =
  Sched.push t.sched lane req;
  t.pending <- t.pending + 1;
  Metrics.Gauge.incr t.metrics.queue_depth;
  Metrics.Gauge.incr t.metrics.lane_depth.(Lane.index lane);
  Metrics.Counter.incr t.metrics.submitted;
  Metrics.Counter.incr t.metrics.lane_admitted.(Lane.index lane);
  Condition.signal t.not_empty

let enqueue_blocking t req =
  let lane = lane_of req in
  Mutex.protect t.mutex (fun () ->
      if t.stopping then shut_down ();
      admit t lane;
      (* Backpressure is per lane: a full batch lane blocks only batch
         producers; interactive submissions keep flowing. *)
      while not (Sched.has_room t.sched lane) && not t.stopping do
        Condition.wait t.not_full t.mutex
      done;
      if t.stopping then shut_down ();
      accept_locked t lane req)

let enqueue_nonblocking t req =
  let lane = lane_of req in
  let accepted =
    Mutex.protect t.mutex (fun () ->
        if t.stopping then shut_down ();
        if not (Breaker.admit t.breakers.(Lane.index lane) ~now:(now ()))
        then begin
          Metrics.Counter.incr t.metrics.breaker_rejected;
          Metrics.Counter.incr t.metrics.lane_shed.(Lane.index lane);
          `Breaker
        end
        else if not (Sched.has_room t.sched lane) then `Full
        else begin
          accept_locked t lane req;
          `Accepted
        end)
  in
  match accepted with
  | `Accepted -> true
  | `Full ->
      Metrics.Counter.incr t.metrics.rejected;
      Metrics.Counter.incr t.metrics.lane_shed.(Lane.index lane);
      false
  | `Breaker -> false

let submit t handle ?lane ?limits q ~k =
  let req, fut = Request.prepare handle ?lane ?limits q ~k in
  enqueue_blocking t req;
  fut

let submit_task t ?lane ?limits ~name f =
  let req, fut = Request.make_task ~name ?lane ?limits f in
  enqueue_blocking t req;
  fut

let try_submit t handle ?lane ?limits q ~k =
  let req, fut = Request.prepare handle ?lane ?limits q ~k in
  if enqueue_nonblocking t req then Some fut else None

let submit_batch t handle ?lane ?limits queries ~k =
  List.map (fun q -> submit t handle ?lane ?limits q ~k) queries

(* --- lifecycle --- *)

let drain t =
  Mutex.protect t.mutex (fun () ->
      while t.pending > 0 do
        Condition.wait t.idle t.mutex
      done)

let shutdown t =
  let sup =
    Mutex.protect t.mutex (fun () ->
        t.stopping <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full;
        let s = t.supervisor in
        t.supervisor <- None;
        s)
  in
  (* Join the supervisor first so no respawn or un-parking races the
     sweep below. *)
  Option.iter Domain.join sup;
  (* Resolve every request that will never run: still-queued and
     parked futures become [Failed "shutdown"] instead of hanging
     their callers.  In-flight requests finish normally. *)
  let queued, parked =
    Mutex.protect t.mutex (fun () ->
        let queued = Sched.drain_all t.sched in
        let parked = List.map snd t.parked in
        t.parked <- [];
        let dropped = List.length queued + List.length parked in
        t.pending <- t.pending - dropped;
        if t.pending = 0 then Condition.broadcast t.idle;
        Condition.broadcast t.not_empty;
        (queued, parked))
  in
  let abort_job from_queue job =
    if from_queue then begin
      Metrics.Gauge.decr t.metrics.queue_depth;
      Metrics.Gauge.decr t.metrics.lane_depth.(Lane.index (lane_of job))
    end;
    Metrics.Counter.incr t.metrics.aborted;
    let o =
      Request.abort job ~worker:(-1) ~reason:(Error.Failed "shutdown")
    in
    record_outcome t.metrics ~lane:(lane_of job) o
  in
  List.iter (abort_job true) queued;
  List.iter (abort_job false) parked;
  (* Join the workers (they exit after finishing in-flight work). *)
  Array.iter
    (fun slot ->
      match slot.dom with
      | Some d ->
          Domain.join d;
          slot.dom <- None
      | None -> ())
    t.slots

(* --- per-worker EM accounting --- *)

let worker_stats t =
  let slot_ids =
    Mutex.protect t.mutex (fun () -> Array.map (fun s -> s.ids) t.slots)
  in
  let per_slot = Array.make t.n_workers Stats.zero_snapshot in
  let seen = Array.make t.n_workers false in
  List.iter
    (fun (d, s) ->
      Array.iteri
        (fun idx ids ->
          if List.mem d ids then begin
            per_slot.(idx) <- Stats.add per_slot.(idx) s;
            seen.(idx) <- true
          end)
        slot_ids)
    (Stats.per_domain ());
  List.filteri
    (fun idx _ -> seen.(idx))
    (List.mapi (fun idx s -> (idx, s)) (Array.to_list per_slot))

let aggregate_stats t =
  List.fold_left
    (fun acc (_, s) -> Stats.add acc s)
    Stats.zero_snapshot (worker_stats t)
