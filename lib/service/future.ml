type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable cell : 'a option;
}

let create () = { mutex = Mutex.create (); cond = Condition.create (); cell = None }

let try_fill t v =
  Mutex.protect t.mutex (fun () ->
      match t.cell with
      | Some _ -> false
      | None ->
          t.cell <- Some v;
          Condition.broadcast t.cond;
          true)

let fill t v =
  if not (try_fill t v) then invalid_arg "Future.fill: already filled"

let await t =
  Mutex.protect t.mutex (fun () ->
      let rec wait () =
        match t.cell with
        | Some v -> v
        | None ->
            Condition.wait t.cond t.mutex;
            wait ()
      in
      wait ())

let poll t = Mutex.protect t.mutex (fun () -> t.cell)

let is_filled t = Option.is_some (poll t)
