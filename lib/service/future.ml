type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable cell : 'a option;
  mutable waiters : ('a -> unit) list;  (* on_fill callbacks, LIFO *)
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    cell = None;
    waiters = [];
  }

let try_fill t v =
  let filled, waiters =
    Mutex.protect t.mutex (fun () ->
        match t.cell with
        | Some _ -> (false, [])
        | None ->
            t.cell <- Some v;
            Condition.broadcast t.cond;
            let w = t.waiters in
            t.waiters <- [];
            (true, w))
  in
  (* Callbacks run on the filling domain, outside the mutex, so they
     may await other futures (but not re-fill this one). *)
  if filled then List.iter (fun f -> f v) waiters;
  filled

let fill t v =
  if not (try_fill t v) then invalid_arg "Future.fill: already filled"

let await t =
  Mutex.protect t.mutex (fun () ->
      let rec wait () =
        match t.cell with
        | Some v -> v
        | None ->
            Condition.wait t.cond t.mutex;
            wait ()
      in
      wait ())

let poll t = Mutex.protect t.mutex (fun () -> t.cell)

let is_filled t = Option.is_some (poll t)

let on_fill t f =
  let now =
    Mutex.protect t.mutex (fun () ->
        match t.cell with
        | Some v -> Some v
        | None ->
            t.waiters <- f :: t.waiters;
            None)
  in
  match now with Some v -> f v | None -> ()
