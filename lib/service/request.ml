module Stats = Topk_em.Stats
module Fault = Topk_em.Fault
module Tr = Topk_trace.Trace
module Certify = Topk_trace.Certify

type spec = {
  instance : string;
  k : int;
  lane : Lane.t;  (* QoS lane the executor queues this request on *)
  limits : Limits.t;
  deadline : float option;  (* absolute, resolved at submission *)
  submitted : float;
}

type outcome = {
  o_status : Response.status;
  o_ios : int;
  o_latency : float;  (* seconds, submit to response *)
  o_verdict : bool option;  (* certification result, when checked *)
}

(* One execution attempt, classified for the supervisor.

   [Completed] means the future has been filled (successfully or with a
   permanent [Failed]) and the request is finished.  [Transient] means
   a retryable [Fault.Em_fault] escaped the query: the future is *not*
   filled, so the executor may re-enqueue the request (with backoff) or
   give up via [abort]. *)
type attempt = Completed of outcome | Transient of string

(* The erased form carried by the executor's queue: the typed query and
   the typed future are captured in the closures.  [run_] executes on a
   worker domain; [abort_] resolves the future with a permanent
   failure from any domain (worker, supervisor, or the shutdown path). *)
type t = {
  spec : spec;
  attempts : int ref;  (* executions started, including retries *)
  run_ : worker:int -> attempt:int -> attempt;
  abort_ : worker:int -> reason:Error.t -> outcome;
}

let spec t = t.spec

let attempts t = !(t.attempts)

let prepare (type q e) (handle : (q, e) Registry.handle)
    ?(lane = Lane.Interactive) ?(limits = Limits.none) (q : q) ~k :
    t * e Response.t Future.t =
  if k <= 0 then
    invalid_arg (Printf.sprintf "Request: k must be positive (got %d)" k);
  (match limits.Limits.budget with
  | Some b when b < 0 ->
      invalid_arg
        (Printf.sprintf "Request: budget must be >= 0 (got %d)" b)
  | _ -> ());
  let submitted = Unix.gettimeofday () in
  let budget, deadline = Limits.resolve limits ~now:submitted in
  (* If the submitter is itself running under a trace (e.g. a scatter
     root), link the worker-side trace of this request back to it. *)
  let parent = Tr.current_trace_id () in
  let info = Registry.info handle in
  let instance = info.Registry.name in
  let spec = { instance; k; lane; limits; deadline; submitted } in
  let attempts = ref 0 in
  let fut = Future.create () in
  (* [try_fill]: a request can race between its worker and the
     shutdown sweep; the first resolution wins and the other becomes a
     no-op instead of an exception that could kill a worker domain. *)
  let finish ~worker ~attempt ~trace_id ~certified answers status cost rounds
      =
    let latency = Unix.gettimeofday () -. submitted in
    ignore
      (Future.try_fill fut
         {
           Response.answers;
           status;
           summary =
             { Response.cost; rounds; attempts = attempt; certified };
           trace_id;
           latency;
           worker;
           instance;
           k;
           seq_token = None;
         }
        : bool);
    {
      o_status = status;
      o_ios = cost.Stats.ios;
      o_latency = latency;
      o_verdict = Option.map (fun v -> v.Certify.v_ok) certified;
    }
  in
  let run_ ~worker ~attempt =
    (* The whole attempt runs under a root span on the worker domain.
       A transient fault is caught *inside* the traced region so every
       open span unwinds before the executor decides to retry. *)
    let outcome, trace =
      Tr.with_root ?parent "request"
        ~attrs:
          [ ("instance", Tr.Str instance);
            ("k", Tr.Int k);
            ("attempt", Tr.Int attempt);
            ("worker", Tr.Int worker) ]
        (fun () ->
          (* The dispatch span: which lane the scheduler served this
             request from and how long it queued before a worker
             picked it up. *)
          Tr.event "sched.dispatch"
            ~attrs:
              [ ("lane", Tr.Str (Lane.name lane));
                ("queued_us",
                 Tr.Int
                   (int_of_float
                      ((Unix.gettimeofday () -. submitted) *. 1e6))) ];
          match Registry.h_exec handle q ~k ~budget ~deadline with
          | result -> `Done result
          | exception Fault.Em_fault msg -> `Fault msg
          | exception e -> `Raised (Printexc.to_string e))
    in
    let trace_id = Option.map (fun (tr : Tr.t) -> tr.Tr.id) trace in
    match outcome with
    | `Done (answers, status, cost, rounds) ->
        (* Certify complete answers against the instance's registered
           cost model, if any; cutoffs did strictly less work than the
           bound assumes, so they are certified too.  Failures are not
           checked. *)
        let certified =
          match status with
          | Response.Failed _ -> None
          | _ ->
              Certify.evaluate ~instance ~k ~measured:cost.Stats.ios ()
        in
        Completed
          (finish ~worker ~attempt ~trace_id ~certified answers status cost
             rounds)
    | `Fault msg ->
        (* Retryable: the future stays empty for the next attempt. *)
        Transient msg
    | `Raised msg ->
        Completed
          (finish ~worker ~attempt ~trace_id ~certified:None []
             (Response.Failed (Error.Failed msg)) Stats.zero_snapshot 0)
  in
  let abort_ ~worker ~reason =
    finish ~worker ~attempt:!attempts ~trace_id:None ~certified:None []
      (Response.Failed reason) Stats.zero_snapshot 0
  in
  ({ spec; attempts; run_; abort_ }, fut)

(* A background job (e.g. an ingest level merge) travelling the same
   scheduler as queries — on its own QoS lane ([Batch] by default) so
   it never sits in front of interactive work: it shares the
   retry/supervision machinery — a transient [Em_fault] parks and
   retries with backoff, a worker crash before the pop loses nothing —
   but carries no query and returns no answers.  The job's EM cost is
   bracketed with [round_carry] exactly like a query's so it lands, in
   full, on the worker domain that ran it and shows up in
   [Stats.aggregate]. *)
let make_task ~name ?(lane = Lane.Batch) ?(limits = Limits.none)
    (f : unit -> unit) : t * unit Response.t Future.t =
  let submitted = Unix.gettimeofday () in
  let _budget, deadline = Limits.resolve limits ~now:submitted in
  let parent = Tr.current_trace_id () in
  let spec = { instance = name; k = 0; lane; limits; deadline; submitted } in
  let attempts = ref 0 in
  let fut = Future.create () in
  let finish ~worker ~attempt ~trace_id status cost =
    let latency = Unix.gettimeofday () -. submitted in
    ignore
      (Future.try_fill fut
         {
           Response.answers = [];
           status;
           summary = { Response.cost; rounds = 1; attempts = attempt;
                       certified = None };
           trace_id;
           latency;
           worker;
           instance = name;
           k = 0;
           seq_token = None;
         }
        : bool);
    {
      o_status = status;
      o_ios = cost.Stats.ios;
      o_latency = latency;
      o_verdict = None;
    }
  in
  let run_ ~worker ~attempt =
    let outcome, trace =
      Tr.with_root ?parent "task"
        ~attrs:
          [ ("task", Tr.Str name);
            ("attempt", Tr.Int attempt);
            ("worker", Tr.Int worker) ]
        (fun () ->
          Tr.event "sched.dispatch"
            ~attrs:
              [ ("lane", Tr.Str (Lane.name lane));
                ("queued_us",
                 Tr.Int
                   (int_of_float
                      ((Unix.gettimeofday () -. submitted) *. 1e6))) ];
          Stats.round_carry ();
          let before = Stats.snapshot () in
          let cost () =
            Stats.round_carry ();
            Stats.diff (Stats.snapshot ()) before
          in
          match f () with
          | () -> `Done (cost ())
          | exception Fault.Em_fault msg -> `Fault msg
          | exception e -> `Raised (Printexc.to_string e, cost ()))
    in
    let trace_id = Option.map (fun (tr : Tr.t) -> tr.Tr.id) trace in
    match outcome with
    | `Done cost ->
        Completed (finish ~worker ~attempt ~trace_id Response.Complete cost)
    | `Fault msg -> Transient msg
    | `Raised (msg, cost) ->
        Completed
          (finish ~worker ~attempt ~trace_id
             (Response.Failed (Error.Failed msg)) cost)
  in
  let abort_ ~worker ~reason =
    finish ~worker ~attempt:!attempts ~trace_id:None
      (Response.Failed reason) Stats.zero_snapshot
  in
  ({ spec; attempts; run_; abort_ }, fut)

let run t ~worker =
  incr t.attempts;
  t.run_ ~worker ~attempt:!(t.attempts)

let abort t ~worker ~reason = t.abort_ ~worker ~reason
