module Stats = Topk_em.Stats
module Fault = Topk_em.Fault

type spec = {
  instance : string;
  k : int;
  budget : int option;
  deadline : float option;  (* absolute wall-clock time *)
  submitted : float;
}

type outcome = {
  o_status : Response.status;
  o_ios : int;
  o_latency : float;  (* seconds, submit to response *)
}

(* One execution attempt, classified for the supervisor.

   [Completed] means the future has been filled (successfully or with a
   permanent [Failed]) and the request is finished.  [Transient] means
   a retryable [Fault.Em_fault] escaped the query: the future is *not*
   filled, so the executor may re-enqueue the request (with backoff) or
   give up via [abort]. *)
type attempt = Completed of outcome | Transient of string

(* The erased form carried by the executor's queue: the typed query and
   the typed future are captured in the closures.  [run_] executes on a
   worker domain; [abort_] resolves the future with a permanent
   failure from any domain (worker, supervisor, or the shutdown path). *)
type t = {
  spec : spec;
  mutable attempts : int;  (* executions started, including retries *)
  run_ : worker:int -> attempt;
  abort_ : worker:int -> reason:string -> outcome;
}

let spec t = t.spec

let attempts t = t.attempts

let make (type q e) (handle : (q, e) Registry.handle) ?budget ?timeout
    ?deadline (q : q) ~k : t * e Response.t Future.t =
  if k <= 0 then
    invalid_arg (Printf.sprintf "Request.make: k must be positive (got %d)" k);
  (match budget with
  | Some b when b < 0 ->
      invalid_arg
        (Printf.sprintf "Request.make: budget must be >= 0 (got %d)" b)
  | _ -> ());
  let submitted = Unix.gettimeofday () in
  let deadline =
    match (timeout, deadline) with
    | Some _, Some _ ->
        invalid_arg "Request.make: pass either ~timeout or ~deadline, not both"
    | Some s, None -> Some (submitted +. s)
    | None, d -> d
  in
  let info = Registry.info handle in
  let spec =
    { instance = info.Registry.name; k; budget; deadline; submitted }
  in
  let fut = Future.create () in
  (* [try_fill]: a request can race between its worker and the
     shutdown sweep; the first resolution wins and the other becomes a
     no-op instead of an exception that could kill a worker domain. *)
  let finish ~worker answers status cost rounds =
    let latency = Unix.gettimeofday () -. submitted in
    ignore
      (Future.try_fill fut
         {
           Response.answers;
           status;
           cost;
           rounds;
           latency;
           worker;
           instance = spec.instance;
           k;
         }
        : bool);
    { o_status = status; o_ios = cost.Stats.ios; o_latency = latency }
  in
  let run_ ~worker =
    match Registry.h_exec handle q ~k ~budget ~deadline with
    | answers, status, cost, rounds ->
        Completed (finish ~worker answers status cost rounds)
    | exception Fault.Em_fault msg ->
        (* Retryable: the future stays empty for the next attempt. *)
        Transient msg
    | exception e ->
        Completed
          (finish ~worker []
             (Response.Failed (Printexc.to_string e))
             Stats.zero_snapshot 0)
  in
  let abort_ ~worker ~reason =
    finish ~worker [] (Response.Failed reason) Stats.zero_snapshot 0
  in
  ({ spec; attempts = 0; run_; abort_ }, fut)

let run t ~worker =
  t.attempts <- t.attempts + 1;
  t.run_ ~worker

let abort t ~worker ~reason = t.abort_ ~worker ~reason
