module Stats = Topk_em.Stats

type spec = {
  instance : string;
  k : int;
  budget : int option;
  deadline : float option;  (* absolute wall-clock time *)
  submitted : float;
}

type outcome = {
  o_status : Response.status;
  o_ios : int;
  o_latency : float;  (* seconds, submit to response *)
}

(* The erased form carried by the executor's queue: the typed query and
   the typed future are captured in [run]'s closure.  [run] executes on
   a worker domain, fills the future, and hands back an [outcome] for
   the pool's metrics. *)
type t = {
  spec : spec;
  run : worker:int -> outcome;
}

let spec t = t.spec

let make (type q e) (handle : (q, e) Registry.handle) ?budget ?timeout
    (q : q) ~k : t * e Response.t Future.t =
  if k <= 0 then
    invalid_arg (Printf.sprintf "Request.make: k must be positive (got %d)" k);
  (match budget with
  | Some b when b < 0 ->
      invalid_arg
        (Printf.sprintf "Request.make: budget must be >= 0 (got %d)" b)
  | _ -> ());
  let submitted = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> submitted +. s) timeout in
  let info = Registry.info handle in
  let spec =
    { instance = info.Registry.name; k; budget; deadline; submitted }
  in
  let fut = Future.create () in
  let run ~worker =
    let answers, status, cost, rounds =
      try Registry.h_exec handle q ~k ~budget ~deadline
      with e ->
        ([], Response.Failed (Printexc.to_string e), Stats.zero_snapshot, 0)
    in
    let latency = Unix.gettimeofday () -. submitted in
    Future.fill fut
      {
        Response.answers;
        status;
        cost;
        rounds;
        latency;
        worker;
        instance = spec.instance;
        k;
      };
    { o_status = status; o_ios = cost.Stats.ios; o_latency = latency }
  in
  ({ spec; run }, fut)

let run t ~worker = t.run ~worker
