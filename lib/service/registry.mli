(** Named, immutable index instances available to the serving layer.

    Registration takes any structure implementing
    {!Topk_core.Sigs.TOPK} — the outputs of the Theorem 1 / Theorem 2
    functors for interval, range, dominance, enclosure or halfspace
    problems all qualify — and returns a {e typed handle} used to
    create requests.  The registry itself stores only erased {!info}
    records, so heterogeneous instances coexist under one registry; the
    query/element types live in the handle, which hides the existential
    in a closure. *)

type info = {
  name : string;       (** the registration name *)
  structure : string;  (** e.g. ["theorem2(seg_stab+slab_max)"] *)
  size : int;          (** elements indexed *)
  space_words : int;   (** space in words *)
}

type ('q, 'e) handle
(** A typed capability to query one registered instance: ['q] is the
    problem's query type, ['e] its element type. *)

type t

val create : unit -> t

val register :
  t ->
  name:string ->
  (module Topk_core.Sigs.TOPK
     with type t = 's
      and type P.query = 'q
      and type P.elem = 'e) ->
  's ->
  ('q, 'e) handle
(** Register a built structure under [name].  Thread-safe.
    @raise Invalid_argument on a duplicate name; the message names the
    structure already registered under it. *)

val info : ('q, 'e) handle -> info

val list : t -> info list
(** In registration order. *)

val find : t -> string -> info option

val find_exn : t -> string -> info
(** Like {!find}, but raises on a miss with a message listing every
    registered instance name.
    @raise Invalid_argument on an unknown name. *)

val mem : t -> string -> bool

val pp_info : Format.formatter -> info -> unit

(**/**)

val exec :
  (module Topk_core.Sigs.TOPK
     with type t = 's
      and type P.query = 'q
      and type P.elem = 'e) ->
  's ->
  'q ->
  k:int ->
  budget:int option ->
  deadline:float option ->
  'e list * Response.status * Topk_em.Stats.snapshot * int
(** Exposed for {!Request}: run one query on the calling domain with
    staged budget/deadline cutoff; returns
    [(answers, status, cost, rounds)].  On a cutoff the answers are a
    certified prefix (the exact heaviest elements reported so far). *)

val h_exec :
  ('q, 'e) handle ->
  'q ->
  k:int ->
  budget:int option ->
  deadline:float option ->
  'e list * Response.status * Topk_em.Stats.snapshot * int
