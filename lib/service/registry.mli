(** Named, immutable index instances available to the serving layer.

    Registration takes any structure implementing
    {!Topk_core.Sigs.TOPK} — the outputs of the Theorem 1 / Theorem 2
    functors for interval, range, dominance, enclosure or halfspace
    problems all qualify — and returns a {e typed handle} used to
    create requests.  The registry itself stores only erased {!info}
    records, so heterogeneous instances coexist under one registry; the
    query/element types live in the handle, which hides the existential
    in a closure. *)

type info = {
  name : string;       (** the registration name *)
  structure : string;  (** e.g. ["theorem2(seg_stab+slab_max)"] *)
  size : int;          (** elements indexed *)
  space_words : int;   (** space in words *)
}

type ('q, 'e) handle
(** A typed capability to query one registered instance: ['q] is the
    problem's query type, ['e] its element type. *)

type 'e update_ops = {
  u_insert : 'e -> unit;
  u_delete : 'e -> unit;
  u_freeze : unit -> unit;
}
(** Write capabilities attached to the handle of an updatable instance
    (one wrapped by [Topk_ingest]).  [u_freeze] stops accepting writes
    and waits for compaction to settle. *)

type t

val create : unit -> t

val register :
  ?update:'e update_ops ->
  t ->
  name:string ->
  (module Topk_core.Sigs.TOPK
     with type t = 's
      and type P.query = 'q
      and type P.elem = 'e) ->
  's ->
  ('q, 'e) handle
(** Register a built structure under [name].  Thread-safe.  Pass
    [?update] to attach write capabilities to the returned handle
    (see {!insert}, {!delete}, {!freeze}); without it the instance is
    static.
    @raise Invalid_argument on a duplicate name; the message names the
    structure already registered under it. *)

val info : ('q, 'e) handle -> info

val updatable : ('q, 'e) handle -> bool

val insert : ('q, 'e) handle -> 'e -> unit
(** Apply an insert through the handle's update capabilities.
    @raise Invalid_argument on a static instance. *)

val delete : ('q, 'e) handle -> 'e -> unit
(** Record a delete (tombstone) through the handle's update
    capabilities.
    @raise Invalid_argument on a static instance. *)

val freeze : ('q, 'e) handle -> unit
(** Stop accepting writes and wait for in-flight compaction to settle.
    @raise Invalid_argument on a static instance. *)

val list : t -> info list
(** In registration order. *)

val resolve : t -> string -> (info, Error.t) result
(** Look up an instance by name.  On a miss, the {!Error.Not_found}
    carries every registered name ranked by edit distance to the query
    — closest first — so callers can print "did you mean ...?"
    diagnostics. *)

val mem : t -> string -> bool

val pp_info : Format.formatter -> info -> unit

(**/**)

val exec :
  (module Topk_core.Sigs.TOPK
     with type t = 's
      and type P.query = 'q
      and type P.elem = 'e) ->
  's ->
  'q ->
  k:int ->
  budget:int option ->
  deadline:float option ->
  'e list * Response.status * Topk_em.Stats.snapshot * int
(** Exposed for {!Request}: run one query on the calling domain with
    staged budget/deadline cutoff; returns
    [(answers, status, cost, rounds)].  On a cutoff the answers are a
    certified prefix (the exact heaviest elements reported so far). *)

val h_exec :
  ('q, 'e) handle ->
  'q ->
  k:int ->
  budget:int option ->
  deadline:float option ->
  'e list * Response.status * Topk_em.Stats.snapshot * int
