module Stats = Topk_em.Stats
module Tr = Topk_trace.Trace
module Cache = Topk_cache.Cache
module Version = Topk_cache.Version

(* The payloads of differently-typed handles share one cache, so the
   answer lists are erased into the classic exception universal: each
   [attach] mints a fresh local exception constructor, giving an
   injection the matching projection alone can reverse.  A projection
   mismatch (impossible unless two handles share an instance name)
   degrades to a miss, never to a wrongly-typed answer. *)
type univ = exn

type t = {
  cache : univ Cache.t option;  (* [None]: caching disabled *)
  metrics : Metrics.t;
}

type ('q, 'e) source =
  | Direct of ('q, 'e) Registry.handle
  | Pooled of Executor.t * ('q, 'e) Registry.handle
  | Endpoint of
      string
      * (?limits:Limits.t ->
        ?consistency:Consistency.t ->
        'q ->
        k:int ->
        'e Response.t)

type ('q, 'e) handle = {
  client : t;
  name : string;
  source : ('q, 'e) source;
  version : unit -> Version.t;
  versioned : bool;  (* a real sampler was supplied: stamp seq tokens *)
  qkey : 'q -> string;
  inj : 'e list -> univ;
  prj : univ -> 'e list option;
}

let create ?(cache = true) ?cache_stripes ?cache_capacity ?cache_ttl
    ?cache_min_cost ?metrics () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  let cache =
    if not cache then None
    else
      Some
        (Cache.create ?stripes:cache_stripes ?capacity:cache_capacity
           ?ttl:cache_ttl ?min_cost:cache_min_cost
           ~on_evict:(fun () ->
             Metrics.Counter.incr metrics.Metrics.cache_evictions)
           ())
  in
  { cache; metrics }

let metrics t = t.metrics

let cache_stats t = Option.map Cache.stats t.cache

let direct h = Direct h

let pooled pool h = Pooled (pool, h)

let endpoint ~name f = Endpoint (name, f)

(* Queries are plain data in every problem family (points, intervals,
   boxes, halfspace coefficients), so their runtime representation is
   a faithful canonical key.  A query type containing functions or
   cyclic values needs an explicit [~qkey]. *)
let marshal_qkey q = Marshal.to_string q []

let attach (type q e) client ?version ?qkey (source : (q, e) source) :
    (q, e) handle =
  let module M = struct
    exception Payload of e list
  end in
  let name =
    match source with
    | Direct h | Pooled (_, h) -> (Registry.info h).Registry.name
    | Endpoint (n, _) -> n
  in
  {
    client;
    name;
    source;
    version =
      (match version with Some f -> f | None -> fun () -> Version.static);
    versioned = Option.is_some version;
    qkey = (match qkey with Some f -> f | None -> marshal_qkey);
    inj = (fun v -> M.Payload v);
    prj = (function M.Payload v -> Some v | _ -> None);
  }

let name h = h.name

let now () = Unix.gettimeofday ()

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* A response produced on the calling domain without executing the
   query: cache hits and fast-path refusals. *)
let local_response h ~k ?(answers = []) ?seq_token ?trace_id
    ?(summary = Response.zero_summary) ~since status =
  let fut = Future.create () in
  Future.fill fut
    {
      Response.answers;
      status;
      summary;
      trace_id;
      latency = now () -. since;
      worker = -1;
      instance = h.name;
      k;
      seq_token;
    };
  fut

(* Offer a completed response to the cache.  [v0] is the instance
   version sampled when the query was dispatched: if the live version
   moved while the query was in flight, the answer may straddle the
   update and is not admitted (the version tag could not be trusted).
   The entry is tagged with the response's own seq token when it
   carries one (a replica may answer from behind the head), falling
   back to [v0]. *)
let offer h ~qkey ~k ~v0 (resp : _ Response.t) =
  match (h.client.cache, resp.Response.status) with
  | Some cache, Response.Complete ->
      let v1 = h.version () in
      if Version.equal v0 v1 then begin
        let version =
          match resp.Response.seq_token with
          | Some seq when h.versioned ->
              Version.make ~term:(Version.term v0) ~seq
          | _ -> v0
        in
        let cost = (Response.cost resp).Stats.ios in
        match
          Cache.admit cache ~instance:h.name ~qkey ~version ~k
            ~len:(List.length resp.Response.answers)
            ~cost ~now:(now ())
            (h.inj resp.Response.answers)
        with
        | `Admitted -> Tr.event "cache.admit" ~attrs:[ ("k", Tr.Int k) ]
        | `Bypassed ->
            Metrics.Counter.incr h.client.metrics.Metrics.cache_bypasses
        | `Superseded -> ()
      end
  | _ -> ()

(* Serve a hit: zero charged I/O, under its own root span so traced
   runs show the query was answered without touching the index. *)
let serve_hit h ~k ~since ~current (entry : univ Cache.entry) answers =
  let open Cache in
  let age_us = int_of_float ((now () -. entry.e_inserted) *. 1e6) in
  let m = h.client.metrics in
  Metrics.Counter.incr m.Metrics.cache_hits;
  Metrics.Histogram.observe m.Metrics.cache_hit_age_us age_us;
  let (), trace =
    Tr.with_root "cache.hit"
      ~attrs:
        [ ("instance", Tr.Str h.name);
          ("k", Tr.Int k);
          ("age_us", Tr.Int age_us);
          ("entry_seq", Tr.Int (Version.seq entry.e_version));
          ("head_seq", Tr.Int (Version.seq current)) ]
      (fun () -> ())
  in
  let trace_id = Option.map (fun (tr : Tr.t) -> tr.Tr.id) trace in
  let seq_token =
    if h.versioned then Some (Version.seq entry.e_version) else None
  in
  local_response h ~k ~answers:(take k answers) ?seq_token ?trace_id ~since
    Response.Complete

let run_direct handle ?limits q ~k =
  let req, fut = Request.prepare handle ?limits q ~k in
  (* The calling domain is the worker: retry transient faults like the
     pool would, with no backoff (there is no queue to yield to). *)
  let rec go retries =
    match Request.run req ~worker:(-1) with
    | Request.Completed _ -> ()
    | Request.Transient msg ->
        if retries >= Executor.default_retry_policy.Executor.max_retries
        then
          ignore
            (Request.abort req ~worker:(-1)
               ~reason:
                 (Error.Failed
                    (Printf.sprintf
                       "transient fault persisted after %d attempts: %s"
                       (Request.attempts req) msg))
              : Request.outcome)
        else go (retries + 1)
  in
  go 0;
  fut

let query ?(limits = Limits.none) ?(consistency = Consistency.Any) h q ~k :
    _ Response.t Future.t =
  if k <= 0 then
    invalid_arg
      (Printf.sprintf "Client.query: k must be positive (got %d)" k);
  Consistency.validate consistency;
  let since = now () in
  let _, deadline = Limits.resolve limits ~now:since in
  match deadline with
  | Some d when d <= since ->
      (* Dead on arrival: refuse without charging anything. *)
      local_response h ~k ~since (Response.Failed Error.Deadline)
  | _ -> (
      let m = h.client.metrics in
      let qkey = h.qkey q in
      let current = h.version () in
      (* A budgeted query may legitimately return a cutoff prefix; a
         cached complete answer would differ from it, so budget runs
         bypass the cache to keep cache-on ≡ cache-off exact. *)
      let consult =
        match (h.client.cache, limits.Limits.budget) with
        | Some cache, None -> Some cache
        | Some _, Some _ ->
            Metrics.Counter.incr m.Metrics.cache_bypasses;
            None
        | None, _ -> None
      in
      let hit =
        match consult with
        | None -> None
        | Some cache -> (
            match
              Cache.find cache ~instance:h.name ~qkey ~current ~consistency
                ~k ~now:since ()
            with
            | Cache.Hit entry -> (
                match h.prj entry.Cache.e_payload with
                | Some answers -> Some (entry, answers)
                | None -> None)
            | Cache.Stale | Cache.Miss -> None)
      in
      match hit with
      | Some (entry, answers) -> serve_hit h ~k ~since ~current entry answers
      | None ->
          if consult <> None then begin
            Metrics.Counter.incr m.Metrics.cache_misses;
            Tr.event "cache.miss" ~attrs:[ ("instance", Tr.Str h.name) ]
          end;
          let dispatch () =
            match h.source with
            | Endpoint (_, f) ->
                let fut = Future.create () in
                Future.fill fut (f ~limits ~consistency q ~k);
                fut
            | Direct handle | Pooled (_, handle)
              when not
                     (Consistency.admits ~current ~entry:current consistency)
              ->
                (* A single live snapshot either satisfies the level or
                   nothing does: shed rather than serve a wrong-era
                   answer. *)
                ignore (handle : _ Registry.handle);
                local_response h ~k ~since (Response.Failed Error.Shed)
            | Direct handle -> run_direct handle ~limits q ~k
            | Pooled (pool, handle) -> (
                match
                  Executor.submit pool handle ~lane:Lane.Interactive ~limits
                    q ~k
                with
                | fut -> fut
                | exception Error.Error e ->
                    (* Uniform surface: admission refusals become
                       [Failed] responses, not exceptions. *)
                    local_response h ~k ~since (Response.Failed e))
          in
          let fut = dispatch () in
          if consult <> None then
            Future.on_fill fut (fun resp -> offer h ~qkey ~k ~v0:current resp);
          fut)

let query_sync ?limits ?consistency h q ~k =
  Future.await (query ?limits ?consistency h q ~k)

let invalidate h q =
  match h.client.cache with
  | None -> false
  | Some cache -> Cache.invalidate cache ~instance:h.name ~qkey:(h.qkey q)
