(** Failure-rate-driven circuit breaker / admission controller.

    Sits in front of {!Executor} submission.  The classic three-state
    machine:

    - {b Closed} — everything is admitted; the last [window] {e final}
      request outcomes are tracked in a ring.  Once at least
      [min_samples] outcomes are present and the failure fraction
      reaches [failure_threshold], the breaker trips to Open.
    - {b Open} — every admission is rejected for [open_duration]
      seconds (callers shed load instead of piling onto a failing
      pool), after which the next admission check moves to Half-open.
    - {b Half-open} — at most [half_open_probes] probe requests are
      admitted; that many successes close the breaker again, any
      failure re-opens it.

    Only final outcomes count: a transient fault that is retried and
    eventually succeeds is one success; exhausted retries are one
    failure.  Partial (budget/deadline cut-off) answers count as
    successes — the pool served them by design. *)

type state = Closed | Open | Half_open

type policy = {
  window : int;              (** sliding window of final outcomes *)
  failure_threshold : float; (** trip when failures/window >= this *)
  min_samples : int;         (** don't trip before this many outcomes *)
  open_duration : float;     (** seconds to reject before half-open *)
  half_open_probes : int;    (** probe successes needed to close *)
}

val default_policy : policy
(** window 128, threshold 0.5, min_samples 32, open 1s, 4 probes. *)

type t

val create : ?policy:policy -> ?on_transition:(state -> unit) -> unit -> t
(** [on_transition] is invoked on every state change (under the
    breaker's lock — keep it trivial; the executor uses it to update
    metrics).
    @raise Invalid_argument on a malformed policy. *)

val admit : t -> now:float -> bool
(** Should a new request be admitted right now?  May transition
    Open -> Half-open when [open_duration] has elapsed. *)

val record : t -> now:float -> ok:bool -> unit
(** Report a request's final outcome ([ok = false] for permanent
    failures only). *)

val state : t -> state

val opens : t -> int
(** Cumulative number of times the breaker tripped to Open. *)

val state_code : state -> int
(** [Closed -> 0], [Half_open -> 1], [Open -> 2] (for gauges). *)

val state_string : state -> string

val pp_state : Format.formatter -> state -> unit
