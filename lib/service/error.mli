(** The one error vocabulary of the serving surface.

    Before this type, failure travelled as raw strings: [Failure]
    payloads from the executor, breaker and router paths, a
    polymorphic [`Not_found] from registry resolution, and dedicated
    exceptions per module.  Every failure a caller can observe — a
    rejected submission, a refused routed read, a [Failed] response —
    is now one of these five cases, raised as {!Error} on synchronous
    paths and carried by {!Response.status} on asynchronous ones. *)

type t =
  | Overloaded
      (** Admission refused by backpressure: the circuit breaker is
          open, or a blocking submit found the pool shedding. *)
  | Not_found of string list
      (** No instance under that name; carries every registered name
          ranked by edit distance, closest first. *)
  | Deadline
      (** The request's deadline had already passed when it would
          have started. *)
  | Shed
      (** Refused without doing work: a nonblocking submit found the
          queue full, or no replica satisfies the requested
          consistency. *)
  | Failed of string
      (** The query raised, or the pool shut down underneath it; the
          message is the diagnostic. *)

exception Error of t

val fail : t -> 'a
(** [fail e] raises [Error e]. *)

val to_string : t -> string

val of_exn : exn -> t
(** [Error e] unwraps; anything else becomes [Failed]. *)

val pp : Format.formatter -> t -> unit
