(* Re-export: the consistency vocabulary is defined next to the cache
   (below the service layer in the dependency order) so the cache's
   staleness rule, the replication router and this facade all share
   the single type.  [Topk_service.Consistency.t] is the canonical
   spelling at call sites. *)
include Topk_cache.Consistency
