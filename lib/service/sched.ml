(* Multi-lane weighted-fair scheduler — see sched.mli for the policy.
   Pure data structure: the executor drives it under its own mutex. *)

module Heap = Topk_util.Heap

type config = {
  capacities : int array;
  weights : int array;
  aging_rounds : int;
  unified : bool;
}

let default_config ?(capacity = 1024) () =
  {
    capacities = Array.make Lane.count capacity;
    weights = Array.of_list (List.map Lane.default_weight Lane.all);
    aging_rounds = 32;
    unified = false;
  }

let unified_config ?(capacity = 1024) () =
  { (default_config ~capacity ()) with unified = true }

let validate cfg =
  if Array.length cfg.capacities <> Lane.count then
    invalid_arg
      (Printf.sprintf "Sched: capacities must have %d entries (got %d)"
         Lane.count
         (Array.length cfg.capacities));
  if Array.length cfg.weights <> Lane.count then
    invalid_arg
      (Printf.sprintf "Sched: weights must have %d entries (got %d)" Lane.count
         (Array.length cfg.weights));
  Array.iteri
    (fun i c ->
      if c < 1 then
        invalid_arg
          (Printf.sprintf "Sched: capacity of %s must be >= 1 (got %d)"
             (Lane.name (Lane.of_index i))
             c))
    cfg.capacities;
  Array.iteri
    (fun i w ->
      if w < 1 then
        invalid_arg
          (Printf.sprintf "Sched: weight of %s must be >= 1 (got %d)"
             (Lane.name (Lane.of_index i))
             w))
    cfg.weights;
  if cfg.aging_rounds < 1 then
    invalid_arg
      (Printf.sprintf "Sched: aging_rounds must be >= 1 (got %d)"
         cfg.aging_rounds)

(* Interactive jobs are heap-ordered by (deadline, push sequence); the
   FIFO lanes only need the enqueue round for the wait accounting. *)
type 'a job = { payload : 'a; enq_round : int; key : float; seq : int }

type 'a t = {
  cfg : config;
  deadline : 'a -> float option;
  heap : 'a job Heap.t;          (* lane 0: deadline-ordered *)
  fifos : 'a job Queue.t array;  (* lanes 1.. : FIFO *)
  mutable seq : int;             (* push counter: heap tie-break *)
  mutable round : int;           (* dispatch decisions taken *)
  credit : int array;            (* smooth weighted round-robin state *)
  wait_start : int array;        (* round of the lane's last grant (or
                                    of becoming non-empty) *)
  max_wait : int array;          (* largest per-job wait observed *)
}

let cmp_job a b =
  match Float.compare a.key b.key with 0 -> compare a.seq b.seq | c -> c

let create cfg ~deadline =
  validate cfg;
  {
    cfg;
    deadline;
    heap = Heap.create ~cmp:cmp_job ();
    fifos = Array.init (Lane.count - 1) (fun _ -> Queue.create ());
    seq = 0;
    round = 0;
    credit = Array.make Lane.count 0;
    wait_start = Array.make Lane.count 0;
    max_wait = Array.make Lane.count 0;
  }

let config t = t.cfg

(* In unified mode every push lands on the one queue (index 0), which
   degrades to FIFO because all keys are +inf and the heap falls back
   to the push sequence. *)
let route t lane = if t.cfg.unified then 0 else Lane.index lane

let depth_of t li =
  if li = 0 then Heap.length t.heap else Queue.length t.fifos.(li - 1)

let lane_depth t lane = depth_of t (route t lane)

let length t =
  let n = ref (Heap.length t.heap) in
  Array.iter (fun q -> n := !n + Queue.length q) t.fifos;
  !n

let is_empty t = length t = 0

let has_room t lane =
  let li = route t lane in
  depth_of t li < t.cfg.capacities.(li)

let push t lane x =
  let li = route t lane in
  if depth_of t li = 0 then t.wait_start.(li) <- t.round;
  let key =
    if li <> 0 || t.cfg.unified then Float.infinity
    else match t.deadline x with Some d -> d | None -> Float.infinity
  in
  let job = { payload = x; enq_round = t.round; key; seq = t.seq } in
  t.seq <- t.seq + 1;
  if li = 0 then Heap.push t.heap job else Queue.push job t.fifos.(li - 1)

let pop_n t li n =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      let job =
        if li = 0 then Heap.pop t.heap
        else Queue.take_opt t.fifos.(li - 1)
      in
      match job with None -> List.rev acc | Some j -> go (j :: acc) (n - 1)
  in
  go [] n

let pop_batch t ~max =
  if max < 1 then invalid_arg "Sched.pop_batch: max must be >= 1";
  let active = List.filter (fun li -> depth_of t li > 0) [ 0; 1; 2 ] in
  match active with
  | [] -> None
  | _ ->
      t.round <- t.round + 1;
      let winner =
        (* Aging first: any lane waiting past the bound is served now,
           oldest wait first, so saturation of a heavier lane can
           never starve the others. *)
        let starving =
          List.filter
            (fun li -> t.round - t.wait_start.(li) > t.cfg.aging_rounds)
            active
        in
        match starving with
        | li :: rest ->
            List.fold_left
              (fun best li ->
                if t.wait_start.(li) < t.wait_start.(best) then li else best)
              li rest
        | [] ->
            (* Smooth weighted round-robin over the non-empty lanes:
               everyone earns its weight, the richest is served and
               pays the round's total back.  Deterministic, and every
               active lane is granted within one cycle of the total
               weight. *)
            let total = ref 0 in
            List.iter
              (fun li ->
                t.credit.(li) <- t.credit.(li) + t.cfg.weights.(li);
                total := !total + t.cfg.weights.(li))
              active;
            let best =
              List.fold_left
                (fun best li ->
                  if t.credit.(li) > t.credit.(best) then li else best)
                (List.hd active) (List.tl active)
            in
            t.credit.(best) <- t.credit.(best) - !total;
            best
      in
      let jobs = pop_n t winner max in
      t.wait_start.(winner) <- t.round;
      let with_waits =
        List.map
          (fun j ->
            let waited = t.round - j.enq_round in
            if waited > t.max_wait.(winner) then t.max_wait.(winner) <- waited;
            (j.payload, waited))
          jobs
      in
      Some (Lane.of_index winner, with_waits)

let drain_all t =
  let rec heap_all acc =
    match Heap.pop t.heap with
    | None -> List.rev acc
    | Some j -> heap_all (j.payload :: acc)
  in
  let fifo_all q =
    let acc = ref [] in
    Queue.iter (fun j -> acc := j.payload :: !acc) q;
    Queue.clear q;
    List.rev !acc
  in
  heap_all [] @ List.concat_map fifo_all (Array.to_list t.fifos)

let round t = t.round

let max_wait_rounds t lane = t.max_wait.(route t lane)
