(** QoS lanes: the vocabulary of the multi-lane scheduler.

    Every piece of work travelling through the {!Executor} is tagged
    with the lane of its producer:

    - [Interactive] — latency-sensitive foreground queries:
      {!Client.query} and every {!Topk_shard.Scatter} leg (legs
      inherit the parent query's lane and deadline).
    - [Batch] — throughput-oriented background work whose latency is
      amortized by design: {!Topk_ingest} level merges.
    - [Maintenance] — housekeeping that must eventually run but never
      ahead of the other two: durable scrub passes and checkpoint GC
      sweeps.

    The scheduler ({!Sched}) gives each lane its own bounded queue,
    capacity, shed policy and circuit breaker, and dequeues them
    weighted-fair with aging so no lane starves. *)

type t = Interactive | Batch | Maintenance

val count : int
(** Number of lanes (3). *)

val all : t list
(** [[Interactive; Batch; Maintenance]], in {!index} order. *)

val index : t -> int
(** [Interactive -> 0], [Batch -> 1], [Maintenance -> 2]. *)

val of_index : int -> t
(** Inverse of {!index}.
    @raise Invalid_argument outside [0 .. count-1]. *)

val name : t -> string
(** ["interactive"], ["batch"], ["maintenance"]. *)

val default_weight : t -> int
(** Weighted-fair dequeue shares: 8 / 2 / 1. *)

val pp : Format.formatter -> t -> unit
