(** The worker pool: OCaml 5 [Domain]-based workers behind one bounded
    MPMC request queue.

    Index structures are immutable once built (the paper's structures
    are static or rebuilt wholesale), so a single snapshot is shared by
    every worker with no per-query synchronisation; the only contended
    state is the queue itself, and workers amortise that by popping
    requests in batches of up to [batch_max].

    Admission control: {!submit} applies backpressure (blocks while the
    queue is at capacity), {!try_submit} sheds load instead (returns
    [None] and counts a rejection).  Per-query graceful degradation —
    budget and deadline cutoff with certified-prefix answers — is
    handled in {!Registry.exec} on the worker.

    Every worker charges the EM cost of the queries it runs to its own
    domain-local {!Topk_em.Stats} slot; {!worker_stats} and
    {!aggregate_stats} expose the per-worker and pooled totals. *)

type t

exception Shut_down
(** Raised by submission after {!shutdown}. *)

val default_workers : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core
    for the submitting thread. *)

val create : ?workers:int -> ?queue_capacity:int -> ?batch_max:int -> unit -> t
(** Spawn the pool.  Defaults: {!default_workers} workers, capacity
    1024, batches of up to 32.
    @raise Invalid_argument on non-positive parameters. *)

val submit :
  t ->
  ('q, 'e) Registry.handle ->
  ?budget:int ->
  ?timeout:float ->
  'q ->
  k:int ->
  'e Response.t Future.t
(** Enqueue a query; blocks while the queue is full ({e backpressure}).
    @raise Shut_down if the pool has been shut down. *)

val try_submit :
  t ->
  ('q, 'e) Registry.handle ->
  ?budget:int ->
  ?timeout:float ->
  'q ->
  k:int ->
  'e Response.t Future.t option
(** Non-blocking admission: [None] (and a rejection count) when the
    queue is at capacity. *)

val submit_batch :
  t ->
  ('q, 'e) Registry.handle ->
  ?budget:int ->
  ?timeout:float ->
  'q list ->
  k:int ->
  'e Response.t Future.t list
(** [submit] each query in order, returning the futures in order. *)

val drain : t -> unit
(** Block until no request is queued or in flight. *)

val shutdown : t -> unit
(** Stop accepting work, let the workers finish the backlog, and join
    them.  Idempotent. *)

val worker_count : t -> int

val queue_depth : t -> int

val metrics : t -> Metrics.t

val worker_stats : t -> (int * Topk_em.Stats.snapshot) list
(** Per-worker EM accounting: [(worker index, counters)] for each
    worker domain that has charged work.  Exact once the pool is
    {!drain}ed (quiescent) or {!shutdown} (joined); a possibly-stale
    reading while queries are still running. *)

val aggregate_stats : t -> Topk_em.Stats.snapshot
(** Sum of {!worker_stats}. *)
