(** The worker pool: OCaml 5 [Domain]-based workers behind a
    multi-lane bounded MPMC scheduler ({!Sched}), under supervision.

    Index structures are immutable once built (the paper's structures
    are static or rebuilt wholesale), so a single snapshot is shared by
    every worker with no per-query synchronisation; the only contended
    state is the scheduler itself, and workers amortise that by popping
    requests in batches of up to [batch_max].

    {b QoS lanes.}  Every submission is tagged with a {!Lane.t}
    (queries default to [Interactive], tasks to [Batch]); each lane
    has its own bounded queue, backpressure, shed accounting and
    circuit breaker.  Workers dequeue lanes weighted-fair (8/2/1) with
    aging, and order the interactive lane by absolute deadline — see
    {!Sched} for the policy and its starvation-freedom bound.  Passing
    a [unified] {!Sched.config} collapses everything back into the one
    FIFO queue with a single shared breaker; [topk sched-bench] runs
    that as its baseline.

    {b Supervision and self-healing.}  The pool is built to degrade
    gracefully under the EM fault model ({!Topk_em.Fault}) instead of
    hanging callers:

    - Any exception escaping a job resolves that job's future as
      {!Response.Failed} — a broken handler can neither kill a worker
      domain nor leak the pending count (so {!drain} always returns).
    - A transient {!Topk_em.Fault.Em_fault} is retried with capped
      exponential backoff + jitter, up to [retry.max_retries] extra
      attempts; the request keeps its future and its attempt counter
      across retries.  Exhausted retries resolve the future as
      [Failed].
    - A supervisor domain respawns crashed worker domains into the
      same slot (per-worker EM accounting follows the slot, not the
      domain) and moves backed-off retries back onto the queue.
    - {!shutdown} resolves {e every} unserved future as
      [Failed "shutdown"] instead of dropping it.

    Admission control is per lane: {!submit} applies backpressure
    (blocks while the request's lane is at capacity — a full batch
    lane never blocks interactive submitters), {!try_submit} sheds
    load instead (returns [None] and counts a rejection), and a
    failure-rate-driven {!Breaker} {e per lane} in front of both
    rejects new work while that lane is persistently failing (closed →
    open → half-open) — so a wedged merge storm cannot trip admission
    for reads.  Per-query
    graceful degradation — budget and deadline cutoff with
    certified-prefix answers — is handled in {!Registry.exec} on the
    worker.

    Every worker charges the EM cost of the queries it runs to its own
    domain-local {!Topk_em.Stats} slot; {!worker_stats} and
    {!aggregate_stats} expose the per-worker and pooled totals. *)

type t

(** Retry policy for transient faults.  Attempt [a] (1-based) backs
    off [min max_backoff (base_backoff * 2^(a-1))] seconds, scaled by
    a uniform factor in [[1-jitter, 1+jitter]]. *)
type retry_policy = {
  max_retries : int;     (** extra attempts after the first (>= 0) *)
  base_backoff : float;  (** seconds *)
  max_backoff : float;   (** cap, seconds *)
  jitter : float;        (** in [[0,1]]; 0 = deterministic backoff *)
}

val default_retry_policy : retry_policy
(** 3 retries, 1ms base, 50ms cap, jitter 0.5. *)

val default_workers : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core
    for the submitting thread. *)

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?batch_max:int ->
  ?retry:retry_policy ->
  ?breaker:Breaker.policy ->
  ?lanes:Sched.config ->
  ?seed:int ->
  unit ->
  t
(** Spawn the pool (workers + one supervisor domain).  Defaults:
    {!default_workers} workers, batches of up to 32,
    {!default_retry_policy}, and {!Sched.default_config} with every
    lane bounded at [queue_capacity] (default 1024).  [lanes]
    overrides the whole scheduler config (then [queue_capacity] is
    ignored); [breaker] sets the policy applied to {e each} lane's
    breaker; [seed] feeds the backoff jitter.
    @raise Invalid_argument on non-positive parameters or a malformed
    retry/breaker/lane policy. *)

val submit :
  t ->
  ('q, 'e) Registry.handle ->
  ?lane:Lane.t ->
  ?limits:Limits.t ->
  'q ->
  k:int ->
  'e Response.t Future.t
(** Enqueue a query; blocks while its lane is full ({e backpressure}).
    [lane] defaults to [Interactive]; fan-out layers pass the parent
    query's lane so shard legs inherit its priority.  [limits] bundles
    the I/O budget and time horizon (default {!Limits.none});
    {!Topk_shard.Scatter} passes an absolute [Limits.At] horizon so
    every per-shard leg of a logical query races the same clock.
    @raise Error.Error [(Failed "shutdown")] if the pool has been shut
    down, [Overloaded] if the lane's circuit breaker is open (that
    lane has been failing persistently; shed load and retry later).
    @raise Invalid_argument on a malformed request (see
    {!Request.prepare}). *)

val submit_task :
  t ->
  ?lane:Lane.t ->
  ?limits:Limits.t ->
  name:string ->
  (unit -> unit) ->
  unit Response.t Future.t
(** Enqueue a background job (see {!Request.make_task}) through the
    same scheduler as queries — on its own lane ([lane] defaults to
    [Batch]; durable scrub/GC pass [Maintenance]) so it shares the
    pool's retry, supervision and per-worker EM accounting without
    sitting in front of interactive work.  The ingestion layer uses
    this to run level merges.  Blocks while the lane is full.
    @raise Error.Error [(Failed "shutdown")] after shutdown,
    [Overloaded] while the lane's breaker is open. *)

val try_submit :
  t ->
  ('q, 'e) Registry.handle ->
  ?lane:Lane.t ->
  ?limits:Limits.t ->
  'q ->
  k:int ->
  'e Response.t Future.t option
(** Non-blocking admission: [None] when the lane is at capacity (a
    queue-full rejection is counted) or the lane's breaker is open (a
    breaker rejection is counted); both also count on the lane's shed
    counter.
    @raise Error.Error [(Failed "shutdown")] after shutdown. *)

val submit_batch :
  t ->
  ('q, 'e) Registry.handle ->
  ?lane:Lane.t ->
  ?limits:Limits.t ->
  'q list ->
  k:int ->
  'e Response.t Future.t list
(** [submit] each query in order, returning the futures in order. *)

val drain : t -> unit
(** Block until no request is queued, parked for retry, or in flight. *)

val shutdown : t -> unit
(** Stop accepting work and stop the pool: in-flight requests finish
    normally; every still-queued or backoff-parked request is resolved
    as [Failed "shutdown"] (so no {!Future.await} ever hangs); the
    supervisor and all workers are joined.  Idempotent.  Call {!drain}
    first for a graceful "finish the backlog, then stop". *)

val worker_count : t -> int

val queue_depth : t -> int
(** Requests queued across all lanes. *)

val lane_depth : t -> Lane.t -> int

val lanes : t -> Sched.config

val metrics : t -> Metrics.t

val breaker_state : t -> Breaker.state
(** The interactive lane's breaker (the one admission callers care
    about); see {!lane_breaker_state} for the others. *)

val lane_breaker_state : t -> Lane.t -> Breaker.state

val retry_policy : t -> retry_policy

val inject_worker_crash : t -> int -> unit
(** Chaos hook: make worker [idx]'s current domain terminate
    abnormally at its next queue interaction (it finishes the batch it
    is processing first, so no claimed request is lost).  The
    supervisor respawns the slot within a tick; the pool keeps
    serving.  Used by [topk chaos-bench] and the chaos tests.
    @raise Invalid_argument if [idx] is not a worker index. *)

val worker_stats : t -> (int * Topk_em.Stats.snapshot) list
(** Per-worker EM accounting: [(worker index, counters)] for each
    worker slot that has charged work, summed over every domain that
    ever occupied the slot (respawns included).  Exact once the pool
    is {!drain}ed (quiescent) or {!shutdown} (joined); a
    possibly-stale reading while queries are still running. *)

val aggregate_stats : t -> Topk_em.Stats.snapshot
(** Sum of {!worker_stats}. *)
