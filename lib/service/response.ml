module Stats = Topk_em.Stats

type status =
  | Complete
  | Cutoff_budget
  | Cutoff_deadline
  | Failed of string

type 'e t = {
  answers : 'e list;
  status : status;
  cost : Stats.snapshot;
  rounds : int;
  latency : float;
  worker : int;
  instance : string;
  k : int;
}

let is_partial r =
  match r.status with
  | Cutoff_budget | Cutoff_deadline -> true
  | Complete | Failed _ -> false

let severity = function
  | Complete -> 0
  | Cutoff_budget -> 1
  | Cutoff_deadline -> 2
  | Failed _ -> 3

let combine_status a b = if severity b > severity a then b else a

let status_string = function
  | Complete -> "complete"
  | Cutoff_budget -> "cutoff:budget"
  | Cutoff_deadline -> "cutoff:deadline"
  | Failed msg -> "failed:" ^ msg

let pp_status ppf s = Format.pp_print_string ppf (status_string s)

let pp ppf r =
  Format.fprintf ppf
    "@[<h>%s k=%d -> %d answer(s) [%a] cost=(%a) rounds=%d worker=%d \
     latency=%.0fus@]"
    r.instance r.k (List.length r.answers) pp_status r.status Stats.pp r.cost
    r.rounds r.worker (r.latency *. 1e6)
