module Stats = Topk_em.Stats
module Certify = Topk_trace.Certify

type status =
  | Complete
  | Cutoff_budget
  | Cutoff_deadline
  | Failed of Error.t

(* Per-query cost accounting, separated from the answer payload so the
   serving layers can combine/inspect it without touching answers. *)
type summary = {
  cost : Stats.snapshot;
  rounds : int;
  attempts : int;
  certified : Certify.verdict option;
}

type 'e t = {
  answers : 'e list;
  status : status;
  summary : summary;
  trace_id : int option;
  latency : float;
  worker : int;
  instance : string;
  k : int;
  seq_token : int option;
}

let seq_token r = r.seq_token

let zero_summary =
  { cost = Stats.zero_snapshot; rounds = 0; attempts = 0; certified = None }

let cost r = r.summary.cost

let rounds r = r.summary.rounds

let attempts r = r.summary.attempts

let certified r = r.summary.certified

let is_partial r =
  match r.status with
  | Cutoff_budget | Cutoff_deadline -> true
  | Complete | Failed _ -> false

let severity = function
  | Complete -> 0
  | Cutoff_budget -> 1
  | Cutoff_deadline -> 2
  | Failed _ -> 3

let combine_status a b = if severity b > severity a then b else a

let combine_summary a b =
  {
    cost = Stats.add a.cost b.cost;
    rounds = a.rounds + b.rounds;
    attempts = a.attempts + b.attempts;
    certified =
      (match (a.certified, b.certified) with
      | Some va, Some vb -> if vb.Certify.v_ok then Some va else Some vb
      | (Some _ as v), None | None, v -> v);
  }

let status_string = function
  | Complete -> "complete"
  | Cutoff_budget -> "cutoff:budget"
  | Cutoff_deadline -> "cutoff:deadline"
  | Failed e -> "failed:" ^ Error.to_string e

let pp_status ppf s = Format.pp_print_string ppf (status_string s)

let pp ppf r =
  Format.fprintf ppf
    "@[<h>%s k=%d -> %d answer(s) [%a] cost=(%a) rounds=%d worker=%d \
     latency=%.0fus%s%s@]"
    r.instance r.k (List.length r.answers) pp_status r.status Stats.pp
    (cost r) (rounds r) r.worker (r.latency *. 1e6)
    (match r.trace_id with
    | Some id -> Printf.sprintf " trace=%d" id
    | None -> "")
    (match certified r with
    | Some v when v.Certify.v_ok -> " certified"
    | Some _ -> " BOUND-VIOLATION"
    | None -> "")
