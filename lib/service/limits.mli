(** Service constraints on one query, unified.

    Earlier layers grew overlapping optional arguments — [?budget] (EM
    I/Os), [?timeout] (relative seconds), [?deadline] (absolute wall
    clock) — threaded separately through {!Request}, {!Executor} and
    the shard fan-out.  A [Limits.t] packages them as one value with a
    builder, so call sites construct constraints once and pass them
    anywhere, and fan-out layers can resolve a relative timeout into
    the single absolute deadline shared by every leg. *)

type horizon =
  | Unbounded
  | At of float      (** absolute wall-clock deadline (epoch seconds) *)
  | Within of float  (** relative timeout, seconds from submission *)

type t = {
  budget : int option;  (** max EM-model I/Os, [None] = unlimited *)
  horizon : horizon;
}

val none : t
(** No constraints: unlimited budget, unbounded horizon. *)

val make : ?budget:int -> ?timeout:float -> ?deadline:float -> unit -> t
(** Bridge from the historical triple.
    @raise Invalid_argument if [budget < 0] or both [timeout] and
    [deadline] are given. *)

(** {1 Builder} *)

val with_budget : int -> t -> t
(** @raise Invalid_argument if negative. *)

val with_timeout : float -> t -> t
(** Replaces the horizon with [Within s]. *)

val with_deadline : float -> t -> t
(** Replaces the horizon with [At d]. *)

val unlimited_budget : t -> t

(** {1 Reading} *)

val is_none : t -> bool

val resolve : t -> now:float -> int option * float option
(** [(budget, absolute_deadline)]: [Within s] becomes [At (now + s)].
    This is the moment a relative timeout is anchored — fan-out layers
    call it once so all legs share one deadline. *)

val pp : Format.formatter -> t -> unit
