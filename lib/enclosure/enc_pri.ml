module Seg = Topk_interval.Seg_stab
module P = Problem

type node = {
  ystab : Seg.t;
  by_id : (int, Rect.t) Hashtbl.t;
}

type t = {
  tree : node Xtree.t;
  n : int;
}

let name = "enc-segtree2"

let make_node rects =
  let by_id = Hashtbl.create (Array.length rects) in
  Array.iter (fun (r : Rect.t) -> Hashtbl.replace by_id r.Rect.id r) rects;
  { ystab = Seg.build (Array.map Rect.y_interval rects); by_id }

let build ?params:_ rects = { tree = Xtree.build ~make_node rects; n = Array.length rects }

let size t = t.n

let space_words t =
  Xtree.space_words t.tree ~words:(fun node ->
      Seg.space_words node.ystab + Hashtbl.length node.by_id)

let visit t (x, y) ~tau f =
  Xtree.visit_path t.tree x (fun node ->
      Seg.visit node.ystab y ~tau (fun itv ->
          f (Hashtbl.find node.by_id itv.Topk_interval.Interval.id)))

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun r -> acc := r :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun r ->
        acc := r :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
