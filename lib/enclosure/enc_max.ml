module Max1 = Topk_interval.Slab_max
module P = Problem

type node = {
  ymax : Max1.t;
  by_id : (int, Rect.t) Hashtbl.t;
}

type t = {
  tree : node Xtree.t;
  n : int;
}

let name = "enc-stabmax2"

let make_node rects =
  let by_id = Hashtbl.create (Array.length rects) in
  Array.iter (fun (r : Rect.t) -> Hashtbl.replace by_id r.Rect.id r) rects;
  { ymax = Max1.build (Array.map Rect.y_interval rects); by_id }

let build ?params:_ rects = { tree = Xtree.build ~make_node rects; n = Array.length rects }

let size t = t.n

let space_words t =
  Xtree.space_words t.tree ~words:(fun node ->
      Max1.space_words node.ymax + Hashtbl.length node.by_id)

let query t (x, y) =
  let best = ref None in
  Xtree.visit_path t.tree x (fun node ->
      match Max1.query node.ymax y with
      | None -> ()
      | Some itv ->
          let r = Hashtbl.find node.by_id itv.Topk_interval.Interval.id in
          (match !best with
           | None -> best := Some r
           | Some b -> if Rect.compare_weight r b > 0 then best := Some r));
  !best
