module Stats = Topk_em.Stats
module P = Problem

type t = {
  slabs : Slabs.t;
  (* Node [i]'s canonical intervals, sorted by decreasing weight.
     Nodes are 1-based heap order; leaf for slab [s] is [leaves + s]. *)
  node_lists : Interval.t array array;
  leaves : int;
  n : int;
}

let name = "seg-stab"

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

(* Assign the inclusive slab range [l, r] to canonical nodes; a node
   covers the half-open slab range [node_lo, node_hi). *)
let assign lists leaves itv l r =
  let rec go node node_lo node_hi =
    if l <= node_lo && r >= node_hi - 1 then
      lists.(node) <- itv :: lists.(node)
    else begin
      let mid = (node_lo + node_hi) / 2 in
      if l < mid then go (2 * node) node_lo mid;
      if r >= mid then go ((2 * node) + 1) mid node_hi
    end
  in
  go 1 0 leaves

let build ?params:_ elems =
  let n = Array.length elems in
  let endpoints = Array.make (2 * n) 0. in
  Array.iteri
    (fun i (itv : Interval.t) ->
      endpoints.(2 * i) <- itv.Interval.lo;
      endpoints.((2 * i) + 1) <- itv.Interval.hi)
    elems;
  let slabs = Slabs.of_endpoints endpoints in
  let leaves = next_pow2 (max 1 (Slabs.slab_count slabs)) 1 in
  let lists = Array.make (2 * leaves) [] in
  Array.iter
    (fun (itv : Interval.t) ->
      let l = Slabs.slab_of_coord slabs itv.Interval.lo in
      let r = Slabs.slab_of_coord slabs itv.Interval.hi in
      assign lists leaves itv l r)
    elems;
  let node_lists =
    Array.map
      (fun l ->
        let arr = Array.of_list l in
        Array.sort (fun a b -> Interval.compare_weight b a) arr;
        arr)
      lists
  in
  { slabs; node_lists; leaves; n }

let size t = t.n

let space_words t =
  Slabs.space_words t.slabs
  + Array.fold_left (fun acc l -> acc + Array.length l) 0 t.node_lists
  + Array.length t.node_lists

(* Visit reportable intervals along the root-to-leaf path of [q]'s
   slab; [f] may raise to stop early. *)
let visit t q ~tau f =
  let s = Slabs.slab_of_point t.slabs q in
  let node = ref (t.leaves + s) in
  while !node >= 1 do
    Stats.charge_ios 1;
    let lst = t.node_lists.(!node) in
    let i = ref 0 in
    let continue = ref true in
    while !continue && !i < Array.length lst do
      let itv = lst.(!i) in
      if itv.Interval.weight >= tau then begin
        Stats.charge_scan 1;
        f itv;
        incr i
      end
      else continue := false
    done;
    node := !node / 2
  done

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun itv -> acc := itv :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun itv ->
        acc := itv :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
