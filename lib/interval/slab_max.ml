module Stats = Topk_em.Stats
module Heap = Topk_util.Heap
module P = Problem

type t = {
  slabs : Slabs.t;
  best : Interval.t option array;  (* per slab: heaviest spanning interval *)
  n : int;
}

let name = "slab-max"

let build ?params:_ elems =
  let n = Array.length elems in
  let endpoints = Array.make (2 * n) 0. in
  Array.iteri
    (fun i (itv : Interval.t) ->
      endpoints.(2 * i) <- itv.Interval.lo;
      endpoints.((2 * i) + 1) <- itv.Interval.hi)
    elems;
  let slabs = Slabs.of_endpoints endpoints in
  let count = Slabs.slab_count slabs in
  (* Sweep the slabs left to right with a lazy-deletion max-heap of the
     active intervals, keyed by (start, end) slab indices. *)
  let with_range =
    Array.map
      (fun (itv : Interval.t) ->
        ( Slabs.slab_of_coord slabs itv.Interval.lo,
          Slabs.slab_of_coord slabs itv.Interval.hi,
          itv ))
      elems
  in
  Array.sort (fun (l1, _, _) (l2, _, _) -> Int.compare l1 l2) with_range;
  let heap =
    Heap.create
      ~cmp:(fun (_, _, (a : Interval.t)) (_, _, b) ->
        Interval.compare_weight b a)
      ()
  in
  let best = Array.make count None in
  let next = ref 0 in
  for s = 0 to count - 1 do
    while
      !next < n
      && (let l, _, _ = with_range.(!next) in l <= s)
    do
      Heap.push heap with_range.(!next);
      incr next
    done;
    let rec top () =
      match Heap.peek heap with
      | Some (_, r, _) when r < s ->
          ignore (Heap.pop heap);
          top ()
      | Some (_, _, itv) -> Some itv
      | None -> None
    in
    best.(s) <- top ()
  done;
  { slabs; best; n }

let size t = t.n

let space_words t = Slabs.space_words t.slabs + Array.length t.best

let query t q =
  let s = Slabs.slab_of_point t.slabs q in
  Stats.charge_ios 1;
  t.best.(s)
