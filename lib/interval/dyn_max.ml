module Stats = Topk_em.Stats
module P = Problem

(* One canonical node: its intervals by decreasing weight, and the head
   of the still-alive suffix. *)
type bnode = {
  items : Interval.t array;
  mutable head : int;
}

type bucket = {
  slabs : Slabs.t;
  nodes : bnode array;  (* 1-based heap order *)
  leaves : int;
  elems : Interval.t array;  (* what the bucket was built from *)
}

type t = {
  mutable buckets : bucket option array;
  dead : (int, unit) Hashtbl.t;
  mutable live_count : int;
  mutable rebuild_count : int;
}

let name = "dyn-slab-max"

let rec next_pow2 x k = if k >= x then k else next_pow2 x (2 * k)

let build_bucket elems =
  let n = Array.length elems in
  let endpoints = Array.make (2 * n) 0. in
  Array.iteri
    (fun i (itv : Interval.t) ->
      endpoints.(2 * i) <- itv.Interval.lo;
      endpoints.((2 * i) + 1) <- itv.Interval.hi)
    elems;
  let slabs = Slabs.of_endpoints endpoints in
  let leaves = next_pow2 (max 1 (Slabs.slab_count slabs)) 1 in
  let lists = Array.make (2 * leaves) [] in
  let assign (itv : Interval.t) =
    let l = Slabs.slab_of_coord slabs itv.Interval.lo in
    let r = Slabs.slab_of_coord slabs itv.Interval.hi in
    let rec go node node_lo node_hi =
      if l <= node_lo && r >= node_hi - 1 then
        lists.(node) <- itv :: lists.(node)
      else begin
        let mid = (node_lo + node_hi) / 2 in
        if l < mid then go (2 * node) node_lo mid;
        if r >= mid then go ((2 * node) + 1) mid node_hi
      end
    in
    go 1 0 leaves
  in
  Array.iter assign elems;
  let nodes =
    Array.map
      (fun l ->
        let items = Array.of_list l in
        Array.sort (fun a b -> Interval.compare_weight b a) items;
        { items; head = 0 })
      lists
  in
  { slabs; nodes; leaves; elems }

let empty () =
  {
    buckets = Array.make 1 None;
    dead = Hashtbl.create 64;
    live_count = 0;
    rebuild_count = 0;
  }

let is_dead t (itv : Interval.t) = Hashtbl.mem t.dead itv.Interval.id

let fill t elems =
  let n = Array.length elems in
  let slots = ref 1 in
  while 1 lsl !slots <= n do incr slots done;
  t.buckets <- Array.make (max 1 !slots) None;
  let offset = ref 0 in
  for i = !slots - 1 downto 0 do
    let cap = 1 lsl i in
    if n - !offset >= cap then begin
      t.buckets.(i) <- Some (build_bucket (Array.sub elems !offset cap));
      offset := !offset + cap
    end
  done

let build ?params:_ elems =
  let t = empty () in
  t.live_count <- Array.length elems;
  fill t (Array.copy elems);
  t

let live_elements t =
  let acc = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some b ->
          Array.iter
            (fun e -> if not (is_dead t e) then acc := e :: !acc)
            b.elems)
    t.buckets;
  Array.of_list !acc

let global_rebuild t =
  let elems = live_elements t in
  Hashtbl.reset t.dead;
  t.rebuild_count <- t.rebuild_count + 1;
  t.live_count <- Array.length elems;
  fill t elems

let insert_fresh t itv =
  let slot = ref 0 in
  let n_slots = Array.length t.buckets in
  while !slot < n_slots && t.buckets.(!slot) <> None do incr slot done;
  if !slot >= n_slots then begin
    let grown = Array.make (n_slots + 1) None in
    Array.blit t.buckets 0 grown 0 n_slots;
    t.buckets <- grown
  end;
  let merged = ref [ itv ] in
  for i = 0 to !slot - 1 do
    (match t.buckets.(i) with
     | Some b ->
         Array.iter
           (fun x ->
             if is_dead t x then Hashtbl.remove t.dead x.Interval.id
             else merged := x :: !merged)
           b.elems
     | None -> ());
    t.buckets.(i) <- None
  done;
  t.buckets.(!slot) <- Some (build_bucket (Array.of_list !merged));
  t.live_count <- t.live_count + 1

let insert t itv =
  if Hashtbl.mem t.dead itv.Interval.id then begin
    (* Re-insert of a tombstoned id: the stale copy is still baked into
       some bucket, so merely dropping the tombstone would resurrect it
       alongside the new element.  Rebuild from the surviving set
       (which excludes the stale copy) plus [itv]. *)
    let merged = Array.append (live_elements t) [| itv |] in
    Hashtbl.reset t.dead;
    t.rebuild_count <- t.rebuild_count + 1;
    t.live_count <- Array.length merged;
    fill t merged
  end
  else insert_fresh t itv

let delete t itv =
  if not (Hashtbl.mem t.dead itv.Interval.id) then begin
    Hashtbl.replace t.dead itv.Interval.id ();
    t.live_count <- t.live_count - 1;
    if Hashtbl.length t.dead > max 8 t.live_count then global_rebuild t
  end

let size t = t.live_count

let live t = t.live_count

let rebuilds t = t.rebuild_count

let space_words t =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some b ->
          acc + Slabs.space_words b.slabs + Array.length b.elems
          + Array.fold_left
              (fun a (n : bnode) -> a + Array.length n.items + 1)
              0 b.nodes)
    0 t.buckets
  + Hashtbl.length t.dead

(* First live interval of a node, advancing the head past tombstones
   (each advance is paid for by one deletion, once). *)
let peek t (node : bnode) =
  let len = Array.length node.items in
  while node.head < len && is_dead t node.items.(node.head) do
    node.head <- node.head + 1
  done;
  if node.head < len then Some node.items.(node.head) else None

let bucket_max t b q =
  let s = Slabs.slab_of_point b.slabs q in
  let best = ref None in
  let node = ref (b.leaves + s) in
  while !node >= 1 do
    Stats.charge_ios 1;
    (match peek t b.nodes.(!node) with
     | None -> ()
     | Some itv -> (
         match !best with
         | None -> best := Some itv
         | Some b' -> if Interval.compare_weight itv b' > 0 then best := Some itv));
    node := !node / 2
  done;
  !best

let query t q =
  let best = ref None in
  Array.iter
    (function
      | None -> ()
      | Some b -> (
          match bucket_max t b q with
          | None -> ()
          | Some itv -> (
              match !best with
              | None -> best := Some itv
              | Some b' ->
                  if Interval.compare_weight itv b' > 0 then best := Some itv)))
    t.buckets;
  !best
