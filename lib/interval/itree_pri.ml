module Stats = Topk_em.Stats
module Pst = Topk_pst.Pst
module P = Problem

type node = {
  center : float;
  (* The node's intervals (those containing [center]), twice: *)
  by_lo : Interval.t Pst.t;  (* key = lo, for queries left of center *)
  by_hi : Interval.t Pst.t;  (* key = hi, for queries right of center *)
  left : node option;        (* intervals entirely left of center *)
  right : node option;
}

type t = {
  root : node option;
  n : int;
  depth : int;
}

let name = "itree-stab"

let weight_of (itv : Interval.t) = itv.Interval.weight

(* Median endpoint of the remaining intervals, as the split center. *)
let median_endpoint intervals =
  let endpoints = Array.make (2 * Array.length intervals) 0. in
  Array.iteri
    (fun i (itv : Interval.t) ->
      endpoints.(2 * i) <- itv.Interval.lo;
      endpoints.((2 * i) + 1) <- itv.Interval.hi)
    intervals;
  Topk_util.Select.quickselect ~cmp:Float.compare endpoints
    (Array.length endpoints / 2)

let rec build_node intervals =
  if Array.length intervals = 0 then (None, 0)
  else begin
    let center = median_endpoint intervals in
    let here = ref [] and lefts = ref [] and rights = ref [] in
    Array.iter
      (fun (itv : Interval.t) ->
        if itv.Interval.hi < center then lefts := itv :: !lefts
        else if itv.Interval.lo > center then rights := itv :: !rights
        else here := itv :: !here)
      intervals;
    let here = Array.of_list !here in
    let left, dl = build_node (Array.of_list !lefts) in
    let right, dr = build_node (Array.of_list !rights) in
    ( Some
        {
          center;
          by_lo =
            Pst.build ~key:(fun (i : Interval.t) -> i.Interval.lo)
              ~weight:weight_of here;
          by_hi =
            Pst.build ~key:(fun (i : Interval.t) -> i.Interval.hi)
              ~weight:weight_of here;
          left;
          right;
        },
      1 + max dl dr )
  end

let build ?params:_ elems =
  let root, depth = build_node (Array.copy elems) in
  { root; n = Array.length elems; depth }

let size t = t.n

let depth t = t.depth

let rec node_words = function
  | None -> 0
  | Some node ->
      1
      + Pst.space_words node.by_lo
      + Pst.space_words node.by_hi
      + node_words node.left
      + node_words node.right

let space_words t = node_words t.root

let visit t q ~tau f =
  let rec go = function
    | None -> ()
    | Some node ->
        Stats.charge_ios 1;
        if q < node.center then begin
          (* Node intervals contain center > q: they contain q iff
             lo <= q. *)
          Pst.query node.by_lo ~side:Pst.Below ~bound:q ~tau f;
          go node.left
        end
        else if q > node.center then begin
          Pst.query node.by_hi ~side:Pst.Above ~bound:q ~tau f;
          go node.right
        end
        else
          (* q = center: every node interval contains q. *)
          Pst.query node.by_lo ~side:Pst.Below ~bound:q ~tau f
  in
  go t.root

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun itv -> acc := itv :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun itv ->
        acc := itv :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
