module P2 = Topk_geom.Point2
module Range_max = Topk_range.Range_max
module Wpoint = Topk_range.Wpoint
module P = Problem

type node = {
  ymax : Range_max.t;
  by_id : (int, P2.t) Hashtbl.t;
}

type t = {
  tree : node Xtree.t;
  n : int;
}

let name = "ortho-rangemax"

let make_node pts =
  let by_id = Hashtbl.create (Array.length pts) in
  Array.iter (fun (p : P2.t) -> Hashtbl.replace by_id p.P2.id p) pts;
  let ypoints =
    Array.map
      (fun (p : P2.t) ->
        Wpoint.make ~id:p.P2.id ~pos:p.P2.y ~weight:p.P2.weight ())
      pts
  in
  { ymax = Range_max.build ypoints; by_id }

let build ?params:_ pts = { tree = Xtree.build ~make_node pts; n = Array.length pts }

let size t = t.n

let space_words t =
  Xtree.space_words t.tree ~words:(fun node ->
      Range_max.space_words node.ymax + Hashtbl.length node.by_id)

let query t (x1, x2, y1, y2) =
  let best = ref None in
  Xtree.visit_range t.tree ~x1 ~x2 (fun node ->
      match Range_max.query node.ymax (y1, y2) with
      | None -> ()
      | Some wp ->
          let p = Hashtbl.find node.by_id wp.Wpoint.id in
          (match !best with
           | None -> best := Some p
           | Some b -> if P2.compare_weight p b > 0 then best := Some p));
  !best
