module P2 = Topk_geom.Point2
module Range_pri = Topk_range.Range_pri
module Wpoint = Topk_range.Wpoint
module P = Problem

type node = {
  ystab : Range_pri.t;
  by_id : (int, P2.t) Hashtbl.t;
}

type t = {
  tree : node Xtree.t;
  n : int;
}

let name = "ortho-rangetree"

let make_node pts =
  let by_id = Hashtbl.create (Array.length pts) in
  Array.iter (fun (p : P2.t) -> Hashtbl.replace by_id p.P2.id p) pts;
  let ypoints =
    Array.map
      (fun (p : P2.t) ->
        Wpoint.make ~id:p.P2.id ~pos:p.P2.y ~weight:p.P2.weight ())
      pts
  in
  { ystab = Range_pri.build ypoints; by_id }

let build ?params:_ pts = { tree = Xtree.build ~make_node pts; n = Array.length pts }

let size t = t.n

let space_words t =
  Xtree.space_words t.tree ~words:(fun node ->
      Range_pri.space_words node.ystab + Hashtbl.length node.by_id)

let visit t (x1, x2, y1, y2) ~tau f =
  Xtree.visit_range t.tree ~x1 ~x2 (fun node ->
      Range_pri.visit node.ystab (y1, y2) ~tau (fun wp ->
          f (Hashtbl.find node.by_id wp.Wpoint.id)))

let query t q ~tau =
  let acc = ref [] in
  visit t q ~tau (fun p -> acc := p :: !acc);
  !acc

exception Enough

let query_monitored t q ~tau ~limit =
  let acc = ref [] and count = ref 0 in
  match
    visit t q ~tau (fun p ->
        acc := p :: !acc;
        incr count;
        if !count > limit then raise Enough)
  with
  | () -> Topk_core.Sigs.All !acc
  | exception Enough -> Topk_core.Sigs.Truncated !acc
