module Stats = Topk_em.Stats

module Make (P : Sigs.PROBLEM) = struct
  module P = P
  module W = Sigs.Weight_order (P)

  type t = { elems : P.elem array }

  let name = "naive-scan"

  let build ?params elems =
    ignore params;
    { elems = Array.copy elems }

  let size t = Array.length t.elems

  let space_words t = Array.length t.elems

  let query t q ~k =
    Stats.mark_query ();
    (* Same k-edge contract as every other TOPK instance: [k <= 0]
       answers [[]] without touching (or charging for) the data. *)
    if k <= 0 then []
    else begin
      let n = Array.length t.elems in
      Stats.charge_scan n;
    let matching = ref [] in
    for i = n - 1 downto 0 do
      let e = t.elems.(i) in
      if P.matches q e then matching := e :: !matching
    done;
      W.top_k k !matching
    end
end
