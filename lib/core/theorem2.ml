module Stats = Topk_em.Stats
module Rng = Topk_util.Rng
module Tr = Topk_trace.Trace

module Make (S : Sigs.PRIORITIZED) (M : Sigs.MAX with module P = S.P) = struct
  module P = S.P
  module W = Sigs.Weight_order (P)

  type rung = {
    max_structure : M.t;  (* on the (1/K_i)-sample R_i *)
    ki : int;             (* ceil of K_i *)
  }

  type t = {
    elems : P.elem array;
    pri_d : S.t;
    ladder : rung array;
    k1 : int;  (* B . Q_max(n), the smallest rung rank *)
    mutable rounds_run : int;
    mutable rounds_failed : int;
  }

  type info = {
    rungs : int;
    k1 : int;
    sample_words : int;
    pri_words : int;
  }

  let name = "theorem2(" ^ S.name ^ "+" ^ M.name ^ ")"

  let build ?(params = Params.default) elems =
    let n = Array.length elems in
    let rng = Rng.create (params.Params.seed + 1) in
    let b = Params.block_size () in
    let k1_f =
      Float.max 1.
        (params.Params.coreset_scale *. float_of_int b
         *. params.Params.q_max n)
    in
    let sigma = params.Params.sigma in
    let elems = Array.copy elems in
    let pri_d = S.build ~params elems in
    let rec rungs acc k_f =
      if k_f > float_of_int n /. 4. then List.rev acc
      else begin
        let ki = max 2 (int_of_float (ceil k_f)) in
        let sample = Rng.sample rng ~p:(1. /. k_f) elems in
        let rung = { max_structure = M.build ~params sample; ki } in
        rungs (rung :: acc) (k_f *. (1. +. sigma))
      end
    in
    let ladder = Array.of_list (rungs [] k1_f) in
    {
      elems;
      pri_d;
      ladder;
      k1 = max 1 (int_of_float (ceil k1_f));
      rounds_run = 0;
      rounds_failed = 0;
    }

  let size t = Array.length t.elems

  let sample_words t =
    Array.fold_left
      (fun acc r -> acc + M.space_words r.max_structure)
      0 t.ladder

  let space_words t =
    Array.length t.elems + S.space_words t.pri_d + sample_words t

  let info t =
    {
      rungs = Array.length t.ladder;
      k1 = t.k1;
      sample_words = sample_words t;
      pri_words = S.space_words t.pri_d;
    }

  let rounds_run t = t.rounds_run

  let rounds_failed t = t.rounds_failed

  let select_top_k k elems =
    Stats.charge_scan (List.length elems);
    W.top_k k elems

  let scan_filter_top ~k q elems =
    Stats.charge_scan (Array.length elems);
    let matching = ref [] in
    for i = Array.length elems - 1 downto 0 do
      if P.matches q elems.(i) then matching := elems.(i) :: !matching
    done;
    W.top_k k !matching

  let query t q ~k =
    Stats.mark_query ();
    if k <= 0 then []
    else
      Tr.with_span "t2.query" ~attrs:[ ("k", Tr.Int k) ] (fun () ->
          let h = Array.length t.ladder in
          (* Queries below K_1 are answered as top-K_1 then k-selected. *)
          let kk = max k t.k1 in
          if h = 0 || kk > t.ladder.(h - 1).ki then begin
            (* Past the ladder: k = Omega(n), scan D. *)
            Tr.add_attr "path" (Tr.Str "scan");
            scan_filter_top ~k q t.elems
          end
          else begin
            Tr.add_attr "path" (Tr.Str "ladder");
            (* Smallest rung with K_j >= kk. *)
            let start = ref 0 in
            while t.ladder.(!start).ki < kk do incr start done;
            let rec round j =
              if j >= h then begin
                Tr.event "t2.ladder_exhausted";
                scan_filter_top ~k q t.elems
              end
              else begin
                t.rounds_run <- t.rounds_run + 1;
                let rung = t.ladder.(j) in
                let kj = rung.ki in
                Tr.with_span "t2.round"
                  ~attrs:[ ("rung", Tr.Int j); ("ki", Tr.Int kj) ]
                  (fun () ->
                    match
                      S.query_monitored t.pri_d q ~tau:Float.neg_infinity
                        ~limit:(4 * kj)
                    with
                    | Sigs.All s ->
                        (* Step 1: |q(D)| <= 4 K_j — solved outright. *)
                        Tr.add_attr "outcome" (Tr.Str "solved");
                        Some (select_top_k k s)
                    | Sigs.Truncated _ -> (
                        (* Step 2: threshold from the max of q(R_j). *)
                        match M.query rung.max_structure q with
                        | None ->
                            (* q(R_j) empty: dummy threshold, fail. *)
                            Tr.add_attr "outcome" (Tr.Str "empty_sample");
                            t.rounds_failed <- t.rounds_failed + 1;
                            None
                        | Some e -> (
                            (* Step 3: candidates above the threshold. *)
                            Tr.add_attr "threshold" (Tr.Float (P.weight e));
                            match
                              S.query_monitored t.pri_d q ~tau:(P.weight e)
                                ~limit:(4 * kj)
                            with
                            | Sigs.All s when List.length s > kj ->
                                (* Step 5: success. *)
                                Tr.add_attr "outcome" (Tr.Str "success");
                                Tr.add_attr "rank_observed"
                                  (Tr.Int (List.length s));
                                Some (select_top_k k s)
                            | Sigs.All s ->
                                (* Step 4: rank missed (K_j, 4 K_j]. *)
                                Tr.add_attr "outcome" (Tr.Str "rank_missed");
                                Tr.add_attr "rank_observed"
                                  (Tr.Int (List.length s));
                                t.rounds_failed <- t.rounds_failed + 1;
                                None
                            | Sigs.Truncated _ ->
                                Tr.add_attr "outcome" (Tr.Str "rank_missed");
                                t.rounds_failed <- t.rounds_failed + 1;
                                None)))
                |> function
                | Some answer -> answer
                | None -> round (j + 1)
              end
            in
            round !start
          end)
end
