module Make (S : Sigs.PRIORITIZED) = struct
  module P = S.P

  type t = {
    pri : S.t;
    weights_desc : float array;
    mutable probe_count : int;
  }

  let name = "max-from-pri(" ^ S.name ^ ")"

  let build ?params elems =
    let weights_desc = Array.map P.weight elems in
    Array.sort (fun a b -> Float.compare b a) weights_desc;
    { pri = S.build ?params elems; weights_desc; probe_count = 0 }

  let size t = Array.length t.weights_desc

  let space_words t = S.space_words t.pri + Array.length t.weights_desc

  let probes t = t.probe_count

  (* Is some element with weight >= weights_desc.(i) matching q? *)
  let non_empty_at t q i =
    t.probe_count <- t.probe_count + 1;
    match S.query_monitored t.pri q ~tau:t.weights_desc.(i) ~limit:0 with
    | Sigs.All [] -> false
    | Sigs.All (_ :: _) | Sigs.Truncated _ -> true

  let query t q =
    let n = Array.length t.weights_desc in
    if n = 0 then None
    else begin
      (* Monotone: as i grows the threshold drops, so non-emptiness
         goes false* then true*. *)
      match
        Topk_util.Search.binary_search_first (non_empty_at t q) 0 n
      with
      | None -> None
      | Some i -> (
          (* The heaviest matching element has weight exactly
             weights_desc.(i) (weights are distinct). *)
          match S.query t.pri q ~tau:t.weights_desc.(i) with
          | e :: rest ->
              Some
                (List.fold_left
                   (fun best x -> if P.weight x > P.weight best then x else best)
                   e rest)
          | [] -> None)
    end
end
