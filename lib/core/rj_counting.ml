module Stats = Topk_em.Stats

module Make (S : Sigs.PRIORITIZED) (C : Sigs.COUNTING with module P = S.P) =
struct
  module P = S.P
  module W = Sigs.Weight_order (P)

  type node =
    | Leaf of P.elem
    | Node of {
        reporter : S.t;
        counter : C.t;
        left : node;
        right : node;
      }

  type t = {
    root : node option;
    elems : P.elem array;  (* weight descending, for the k = Omega(n) scan *)
    mutable probe_count : int;
  }

  let name = "rj-counting(" ^ S.name ^ "+" ^ C.name ^ ")"

  let rec build_node ?params sorted lo hi =
    if hi - lo = 1 then Leaf sorted.(lo)
    else begin
      let mid = (lo + hi) / 2 in
      let range = Array.sub sorted lo (hi - lo) in
      Node
        {
          reporter = S.build ?params range;
          counter = C.build range;
          left = build_node ?params sorted lo mid;
          right = build_node ?params sorted mid hi;
        }
    end

  let build ?params elems =
    let sorted = Array.copy elems in
    Array.sort W.compare_desc sorted;
    let root =
      if Array.length sorted = 0 then None
      else Some (build_node ?params sorted 0 (Array.length sorted))
    in
    { root; elems = sorted; probe_count = 0 }

  let size t = Array.length t.elems

  let rec node_words = function
    | Leaf _ -> 1
    | Node { reporter; counter; left; right } ->
        S.space_words reporter + C.space_words counter + node_words left
        + node_words right

  let space_words t =
    Array.length t.elems
    + match t.root with None -> 0 | Some root -> node_words root

  let counting_queries t = t.probe_count

  let count t node q =
    t.probe_count <- t.probe_count + 1;
    match node with
    | Leaf e -> if P.matches q e then 1 else 0
    | Node { counter; _ } -> C.count counter q

  let scan_filter_top ~k q elems =
    Stats.charge_scan (Array.length elems);
    let matching = ref [] in
    for i = Array.length elems - 1 downto 0 do
      if P.matches q elems.(i) then matching := elems.(i) :: !matching
    done;
    W.top_k k !matching

  let query t q ~k =
    Stats.mark_query ();
    if k <= 0 then []
    else begin
      match t.root with
      | None -> []
      | Some root ->
          let n = Array.length t.elems in
          if 2 * k >= n then scan_filter_top ~k q t.elems
          else begin
            let total = count t root q in
            if total <= k then begin
              (* Everything matching is wanted: one full report. *)
              let got =
                match root with
                | Leaf e -> if P.matches q e then [ e ] else []
                | Node { reporter; _ } ->
                    S.query reporter q ~tau:Float.neg_infinity
              in
              Stats.charge_scan (List.length got);
              W.top_k k got
            end
            else begin
              (* Descend for the rank of the k-th heaviest match; the
                 skipped left subtrees form the canonical prefix. *)
              let acc = ref [] in
              let report = function
                | Leaf e ->
                    if P.matches q e then begin
                      Stats.charge_scan 1;
                      acc := e :: !acc
                    end
                | Node { reporter; _ } ->
                    List.iter
                      (fun e -> acc := e :: !acc)
                      (S.query reporter q ~tau:Float.neg_infinity)
              in
              let rec descend node remaining =
                match node with
                | Leaf e ->
                    (* remaining = 1 and this element matches. *)
                    if P.matches q e then begin
                      Stats.charge_scan 1;
                      acc := e :: !acc
                    end
                | Node { left; right; _ } ->
                    let cl = count t left q in
                    if cl >= remaining then descend left remaining
                    else begin
                      report left;
                      descend right (remaining - cl)
                    end
              in
              descend root k;
              Stats.charge_scan (List.length !acc);
              W.top_k k !acc
            end
          end
    end
end
