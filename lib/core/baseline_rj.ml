module Stats = Topk_em.Stats

module Make (S : Sigs.PRIORITIZED) = struct
  module P = S.P
  module W = Sigs.Weight_order (P)

  type t = {
    elems : P.elem array;
    pri : S.t;
    weights_desc : float array;  (* all weights, descending *)
    mutable probe_count : int;
  }

  let name = "baseline-rj(" ^ S.name ^ ")"

  let build ?params elems =
    let elems = Array.copy elems in
    let weights_desc = Array.map P.weight elems in
    Array.sort (fun a b -> Float.compare b a) weights_desc;
    { elems; pri = S.build ?params elems; weights_desc; probe_count = 0 }

  let size t = Array.length t.elems

  let space_words t = Array.length t.elems + S.space_words t.pri +
                      Array.length t.weights_desc

  let probes t = t.probe_count

  let select_top_k k elems =
    Stats.charge_scan (List.length elems);
    W.top_k k elems

  let scan_filter_top ~k q elems =
    Stats.charge_scan (Array.length elems);
    let matching = ref [] in
    for i = Array.length elems - 1 downto 0 do
      if P.matches q elems.(i) then matching := elems.(i) :: !matching
    done;
    W.top_k k !matching

  (* Does q(D) restricted to weight >= tau contain at least k elements? *)
  let count_at_least t q ~tau ~k =
    t.probe_count <- t.probe_count + 1;
    match S.query_monitored t.pri q ~tau ~limit:k with
    | Sigs.Truncated _ -> true
    | Sigs.All s -> List.length s >= k

  let query t q ~k =
    Stats.mark_query ();
    if k <= 0 then []
    else begin
      let n = Array.length t.elems in
      if 2 * k >= n then scan_filter_top ~k q t.elems
      else begin
        (* Find the smallest index i (0-based in the descending weight
           array) such that count (>= weights_desc.(i)) >= k.  The
           predicate is monotone in i. *)
        let ok i = count_at_least t q ~tau:t.weights_desc.(i) ~k in
        match Topk_util.Search.binary_search_first ok 0 n with
        | None ->
            (* Fewer than k elements match in total. *)
            select_top_k k (S.query t.pri q ~tau:Float.neg_infinity)
        | Some i ->
            (* Distinct weights: the count at this threshold is exactly
               k, so the final query returns the answer set itself. *)
            select_top_k k (S.query t.pri q ~tau:t.weights_desc.(i))
      end
    end
end
