(** Interfaces of the reduction framework.

    The paper abstracts a reporting problem as a pair (domain [D],
    predicate set [Q]); an input is a set of weighted elements of the
    domain.  A concrete problem supplies {!PROBLEM}; its indexing
    structures supply {!PRIORITIZED} (queries [(q, tau)]), {!MAX}
    (queries [q], i.e. top-1), and {!TOPK} (queries [(q, k)]).

    Both reduction theorems consume {!PRIORITIZED} (and {!MAX}) as
    black boxes and produce a {!TOPK}, which is the whole point: the
    functors in {!Theorem1} and {!Theorem2} never inspect the concrete
    problem beyond these interfaces. *)

(** A reporting problem: elements, predicates, and the satisfaction
    test.  Weights are assumed pairwise distinct (Section 1.1); [id]
    supplies the tie-break that enforces a strict total order even if a
    workload violates the assumption. *)
module type PROBLEM = sig
  type elem

  type query

  val weight : elem -> float
  (** The real-valued priority [w(e)]. *)

  val id : elem -> int
  (** A key unique among the elements of one input set. *)

  val matches : query -> elem -> bool
  (** Whether [e] satisfies the predicate [q] — the oracle definition
      of [q(D)].  Structures must agree with this function. *)

  val pp_elem : Format.formatter -> elem -> unit

  val pp_query : Format.formatter -> query -> unit
end

(** Outcome of a cost-monitored query (Section 3.2): either the query
    terminated by itself and the full answer is returned, or it was cut
    off after reporting [limit + 1] elements, which certifies that the
    full answer has more than [limit] elements. *)
type 'elem monitored =
  | All of 'elem list        (** complete answer, size [<= limit] *)
  | Truncated of 'elem list  (** a prefix of size [limit + 1] *)

(** A structure for prioritized reporting: query [(q, tau)] returns all
    elements satisfying [q] with weight [>= tau], in
    [Q_pri(n) + O(t/B)] I/Os. *)
module type PRIORITIZED = sig
  module P : PROBLEM

  type t

  val name : string

  val build : ?params:Params.t -> P.elem array -> t
  (** The elements must have pairwise distinct [id]s.  [params] is
      accepted uniformly across {!PRIORITIZED}, {!MAX} and {!TOPK} so
      that reductions and shard sets can thread one configuration
      record through every layer; structures that have no tunables
      ignore it. *)

  val size : t -> int
  (** Number of elements indexed. *)

  val space_words : t -> int
  (** Space in words; divide by [B] for blocks. *)

  val query : t -> P.query -> tau:float -> P.elem list
  (** All elements matching [q] with weight [>= tau], unordered. *)

  val query_monitored :
    t -> P.query -> tau:float -> limit:int -> P.elem monitored
  (** Cost-monitored variant: stops as soon as [limit + 1] elements
      have been reported, charging only the work actually done. *)
end

(** A structure for max reporting: top-k with [k] fixed to 1, in
    [Q_max(n)] I/Os. *)
module type MAX = sig
  module P : PROBLEM

  type t

  val name : string

  val build : ?params:Params.t -> P.elem array -> t
  (** As in {!PRIORITIZED.build}: [params] is accepted uniformly and
      ignored by structures without tunables. *)

  val size : t -> int

  val space_words : t -> int

  val query : t -> P.query -> P.elem option
  (** The element of maximum weight satisfying [q], or [None] if no
      element does. *)
end

(** A structure for top-k reporting: query [(q, k)] returns the [k]
    heaviest elements satisfying [q] — all of them if fewer than [k]
    match — in [Q_top(n) + O(k/B)] I/Os. *)
module type TOPK = sig
  module P : PROBLEM

  type t

  val name : string

  val build : ?params:Params.t -> P.elem array -> t

  val size : t -> int

  val space_words : t -> int

  val query : t -> P.query -> k:int -> P.elem list
  (** Sorted by decreasing weight.  Edge cases are uniform across all
      implementations: [k <= 0] answers [[]] without touching (or
      charging for) the data, and [k] at least the number of matches
      answers every matching element, still sorted. *)
end

(** Prioritized reporting with insertions and deletions, for the
    dynamic version of Theorem 2. *)
module type DYNAMIC_PRIORITIZED = sig
  include PRIORITIZED

  val insert : t -> P.elem -> unit

  val delete : t -> P.elem -> unit
  (** Deleting an element that is not present is a no-op. *)
end

(** Max reporting with insertions and deletions. *)
module type DYNAMIC_MAX = sig
  include MAX

  val insert : t -> P.elem -> unit

  val delete : t -> P.elem -> unit
end

(** Top-k reporting with insertions and deletions. *)
module type DYNAMIC_TOPK = sig
  include TOPK

  val insert : t -> P.elem -> unit

  val delete : t -> P.elem -> unit
end

(** The strict total order on weights used everywhere: weight first,
    [id] as tie-break. *)
module Weight_order (P : PROBLEM) = struct
  let compare e1 e2 =
    match Float.compare (P.weight e1) (P.weight e2) with
    | 0 -> Int.compare (P.id e1) (P.id e2)
    | c -> c

  let compare_desc e1 e2 = compare e2 e1

  let max e1 e2 = if compare e1 e2 >= 0 then e1 else e2

  let sort_desc elems =
    let arr = Array.of_list elems in
    Array.sort compare_desc arr;
    Array.to_list arr

  (** The [k] heaviest of [elems], sorted by decreasing weight. *)
  let top_k k elems = Topk_util.Select.top_k ~cmp:compare k elems
end

(** A structure for (exact) counting: given a predicate, return
    [|q(D)|] without reporting, in [Q_cnt(n)] I/Os.  Section 2 of the
    paper reviews the Rahul–Janardan reduction that combines such a
    structure with a plain reporting structure into a top-k structure
    (implemented in {!Rj_counting}); the footnote there notes the
    reduction needs exact counts. *)
module type COUNTING = sig
  module P : PROBLEM

  type t

  val name : string

  val build : P.elem array -> t

  val size : t -> int

  val space_words : t -> int

  val count : t -> P.query -> int
  (** [|q(D)|]. *)
end
