(** Dynamization of a static prioritized structure by the logarithmic
    method (Bentley–Saxe) with weak deletions.

    The elements live in [O(log n)] buckets of geometrically growing
    capacity, each a static black-box structure.  An insertion merges
    full buckets into the next empty one (amortized
    [O((build(n)/n) log n)]); a deletion tombstones the element and
    triggers a global rebuild once half the stored elements are dead,
    so queries pay at most a factor-2 overhead for filtering.

    This provides the [U_pri] black box that the dynamic form of
    Theorem 2 consumes (Section 5.1 cites Tao [34] for an I/O-optimal
    dynamic structure; the logarithmic method is the classic
    substitution with an extra [log] on updates). *)

module Make (S : Sigs.PRIORITIZED) : sig
  include Sigs.DYNAMIC_PRIORITIZED with module P = S.P

  val of_elements : ?params:Params.t -> P.elem array -> t
  (** Alias of [build]. *)

  val live : t -> int
  (** Elements currently stored (i.e. not tombstoned). *)

  val rebuilds : t -> int
  (** Global rebuilds triggered by deletions so far. *)

  val bucket_count : t -> int
end
