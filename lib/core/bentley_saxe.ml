module Stats = Topk_em.Stats

module Make (S : Sigs.PRIORITIZED) = struct
  module P = S.P

  type bucket = {
    structure : S.t;
    elems : P.elem array;  (* what it was built from *)
  }

  type t = {
    mutable buckets : bucket option array;  (* slot i holds <= 2^i elems *)
    dead : (int, unit) Hashtbl.t;
    mutable live_count : int;
    mutable rebuild_count : int;
    params : Params.t option;  (* threaded into every bucket rebuild *)
  }

  let name = "bentley-saxe(" ^ S.name ^ ")"

  let empty ?params () =
    {
      buckets = Array.make 1 None;
      dead = Hashtbl.create 64;
      live_count = 0;
      rebuild_count = 0;
      params;
    }

  let is_dead t (e : P.elem) = Hashtbl.mem t.dead (P.id e)

  (* Distribute [elems] over buckets by the binary representation of
     the count, leaving lower slots empty for cheap insertions. *)
  let fill t elems =
    let n = Array.length elems in
    let slots = ref 1 in
    while 1 lsl !slots <= n do incr slots done;
    t.buckets <- Array.make (max 1 !slots) None;
    let offset = ref 0 in
    for i = !slots - 1 downto 0 do
      let cap = 1 lsl i in
      if n - !offset >= cap then begin
        let part = Array.sub elems !offset cap in
        t.buckets.(i) <-
          Some { structure = S.build ?params:t.params part; elems = part };
        offset := !offset + cap
      end
    done

  let build ?params elems =
    let t = empty ?params () in
    let elems = Array.copy elems in
    t.live_count <- Array.length elems;
    fill t elems;
    t

  let of_elements = build

  let live_elements t =
    let acc = ref [] in
    Array.iter
      (function
        | None -> ()
        | Some b ->
            Array.iter
              (fun e -> if not (is_dead t e) then acc := e :: !acc)
              b.elems)
      t.buckets;
    Array.of_list !acc

  let global_rebuild t =
    let elems = live_elements t in
    Hashtbl.reset t.dead;
    t.rebuild_count <- t.rebuild_count + 1;
    t.live_count <- Array.length elems;
    fill t elems

  let insert_fresh t e =
    (* Find the first empty slot; everything below merges into it. *)
    let slot = ref 0 in
    let n_slots = Array.length t.buckets in
    while !slot < n_slots && t.buckets.(!slot) <> None do incr slot done;
    if !slot >= n_slots then begin
      let grown = Array.make (n_slots + 1) None in
      Array.blit t.buckets 0 grown 0 n_slots;
      t.buckets <- grown
    end;
    let merged = ref [ e ] in
    for i = 0 to !slot - 1 do
      (match t.buckets.(i) with
       | Some b ->
           Array.iter
             (fun x ->
               if is_dead t x then Hashtbl.remove t.dead (P.id x)
               else merged := x :: !merged)
             b.elems
       | None -> ());
      t.buckets.(i) <- None
    done;
    let part = Array.of_list !merged in
    (* Tombstone purging during the merge may have shrunk the batch
       below this slot's capacity; that only helps. *)
    t.buckets.(!slot) <-
      Some { structure = S.build ?params:t.params part; elems = part };
    t.live_count <- t.live_count + 1

  let insert t e =
    if Hashtbl.mem t.dead (P.id e) then begin
      (* Re-insert of a tombstoned id: the stale copy is still baked
         into some bucket, so merely dropping the tombstone would
         resurrect it alongside the new element.  Rebuild from the
         surviving set (which excludes the stale copy) plus [e]. *)
      let merged = Array.append (live_elements t) [| e |] in
      Hashtbl.reset t.dead;
      t.rebuild_count <- t.rebuild_count + 1;
      t.live_count <- Array.length merged;
      fill t merged
    end
    else insert_fresh t e

  let delete t e =
    if not (Hashtbl.mem t.dead (P.id e)) then begin
      Hashtbl.replace t.dead (P.id e) ();
      t.live_count <- t.live_count - 1;
      if Hashtbl.length t.dead > max 8 t.live_count then global_rebuild t
    end

  let size t = t.live_count

  let live t = t.live_count

  let rebuilds t = t.rebuild_count

  let bucket_count t =
    Array.fold_left
      (fun acc -> function Some _ -> acc + 1 | None -> acc)
      0 t.buckets

  let space_words t =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some b -> acc + S.space_words b.structure + Array.length b.elems)
      0 t.buckets
    + Hashtbl.length t.dead

  let query t q ~tau =
    let acc = ref [] in
    Array.iter
      (function
        | None -> ()
        | Some b ->
            Stats.charge_ios 1;
            List.iter
              (fun e -> if not (is_dead t e) then acc := e :: !acc)
              (S.query b.structure q ~tau))
      t.buckets;
    !acc

  exception Enough

  let query_monitored t q ~tau ~limit =
    let acc = ref [] and count = ref 0 in
    let consider e =
      if not (is_dead t e) then begin
        acc := e :: !acc;
        incr count;
        if !count > limit then raise Enough
      end
    in
    match
      Array.iter
        (function
          | None -> ()
          | Some b -> (
              Stats.charge_ios 1;
              match S.query_monitored b.structure q ~tau ~limit with
              | Sigs.All es -> List.iter consider es
              | Sigs.Truncated es ->
                  (* The truncated prefix may be padded with dead
                     elements; feed it first (it may already exceed
                     the live limit), then fall back to the full
                     bucket query so an [All] verdict stays exact. *)
                  List.iter consider es;
                  let seen = Hashtbl.create (List.length es) in
                  List.iter (fun e -> Hashtbl.replace seen (P.id e) ()) es;
                  List.iter
                    (fun e ->
                      if not (Hashtbl.mem seen (P.id e)) then consider e)
                    (S.query b.structure q ~tau)))
        t.buckets
    with
    | () -> Sigs.All !acc
    | exception Enough -> Sigs.Truncated !acc
end
