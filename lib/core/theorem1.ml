module Stats = Topk_em.Stats
module Rng = Topk_util.Rng
module Tr = Topk_trace.Trace

module Make (S : Sigs.PRIORITIZED) = struct
  module P = S.P
  module W = Sigs.Weight_order (P)

  type level = {
    elems : P.elem array;  (* R_j *)
    pri : S.t option;      (* none on the last level, which is scanned *)
    rank_target : int;     (* ceil (8 lambda ln |R_(j-1)|); 0 at j = 0 *)
  }

  type rung = {
    chain : level array;  (* top-f chain built on the core-set R[i] *)
    rung_rank_target : int;  (* ceil (8 lambda ln n) for this core-set *)
    kk : int;  (* K = 2^(i-1) f *)
  }

  type t = {
    elems : P.elem array;  (* D, for the k = Omega(n) scan *)
    pri_d : S.t;           (* prioritized structure on D *)
    chain : level array;   (* R_0 = D, R_1, ... *)
    ladder : rung array;
    f : int;
    mutable fallback_count : int;
  }

  type info = {
    f : int;
    chain_levels : int;
    ladder_rungs : int;
    coreset_words : int;
  }

  let name = "theorem1(" ^ S.name ^ ")"

  (* k-selection on a fetched candidate list costs one pass over it. *)
  let select_top_k k elems =
    Stats.charge_scan (List.length elems);
    W.top_k k elems

  let scan_filter_top ~k q elems =
    Stats.charge_scan (Array.length elems);
    let matching = ref [] in
    for i = Array.length elems - 1 downto 0 do
      if P.matches q elems.(i) then matching := elems.(i) :: !matching
    done;
    W.top_k k !matching

  (* A chain of nested core-sets, all with K = f, ending as soon as a
     level fits in 4f elements (scanned directly) or stops shrinking
     (degenerate inputs). *)
  let build_chain rng ~params ~f ground =
    let lambda = params.Params.lambda in
    let retries = params.Params.max_sample_retries in
    let rec go acc current rank_target =
      let n = Array.length current in
      if n <= 4 * f then
        List.rev ({ elems = current; pri = None; rank_target } :: acc)
      else begin
        let cs = Core_set.build rng ~lambda ~max_retries:retries ~k:f current in
        if Array.length cs.Core_set.elems >= n then
          (* No shrinkage (degenerate input): make this the last level,
             answered by scanning, so recursion always terminates. *)
          List.rev ({ elems = current; pri = None; rank_target } :: acc)
        else begin
          let level =
            { elems = current;
              pri = Some (S.build ~params current);
              rank_target }
          in
          go (level :: acc) cs.Core_set.elems cs.Core_set.rank_target
        end
      end
    in
    Array.of_list (go [] ground 0)

  let build ?(params = Params.default) elems =
    let n = Array.length elems in
    let rng = Rng.create params.Params.seed in
    let b = Params.block_size () in
    let f_eq9 =
      params.Params.coreset_scale
      *. 12. *. params.Params.lambda
      *. float_of_int b
      *. params.Params.q_pri n
    in
    (* Eq. (11): f must dominate every rank target in the structure. *)
    let f_eq11 = ceil (8. *. params.Params.lambda *. Params.ln n) in
    let f = max 1 (int_of_float (ceil (Float.max f_eq9 f_eq11))) in
    let elems = Array.copy elems in
    let pri_d = S.build ~params elems in
    let chain = build_chain rng ~params ~f elems in
    let ladder =
      let rec rungs acc kk =
        if kk > n then List.rev acc
        else begin
          let cs =
            Core_set.build rng ~lambda:params.Params.lambda
              ~max_retries:params.Params.max_sample_retries ~k:kk elems
          in
          let rung =
            {
              chain = build_chain rng ~params ~f cs.Core_set.elems;
              rung_rank_target = cs.Core_set.rank_target;
              kk;
            }
          in
          if kk > n / 2 then List.rev (rung :: acc)
          else rungs (rung :: acc) (2 * kk)
        end
      in
      if f > n then [||] else Array.of_list (rungs [] (2 * f))
    in
    { elems; pri_d; chain; ladder; f; fallback_count = 0 }

  let size t = Array.length t.elems

  let chain_words chain =
    Array.fold_left
      (fun acc (lev : level) ->
        acc + Array.length lev.elems
        + (match lev.pri with Some s -> S.space_words s | None -> 0))
      0 chain

  let space_words t =
    S.space_words t.pri_d + Array.length t.elems
    + chain_words t.chain
    + Array.fold_left (fun acc (r : rung) -> acc + chain_words r.chain) 0 t.ladder

  let info (t : t) =
    {
      f = t.f;
      chain_levels = Array.length t.chain;
      ladder_rungs = Array.length t.ladder;
      coreset_words =
        chain_words t.chain
        + Array.fold_left (fun acc (r : rung) -> acc + chain_words r.chain) 0 t.ladder;
    }

  let fallbacks t = t.fallback_count

  (* Cost-monitored probe, reported to the active trace (if any) with
     its limit and All/Truncated outcome; the span's Stats delta is the
     probe's charged I/Os.  Tracing never charges Stats itself. *)
  let probe name pri q ~tau ~limit =
    Tr.with_span name ~attrs:[ ("limit", Tr.Int limit) ] (fun () ->
        let r = S.query_monitored pri q ~tau ~limit in
        if Tr.is_enabled () then begin
          (match r with
          | Sigs.All es ->
              Tr.add_attr "outcome" (Tr.Str "all");
              Tr.add_attr "reported" (Tr.Int (List.length es))
          | Sigs.Truncated es ->
              Tr.add_attr "outcome" (Tr.Str "truncated");
              Tr.add_attr "reported" (Tr.Int (List.length es)));
          Tr.add_attr "tau" (Tr.Float tau)
        end;
        r)

  (* Answer a top-f query on chain level [j]: returns the
     min (f, |q(R_j)|) heaviest elements of q(R_j), sorted descending. *)
  let rec top_f (t : t) (chain : level array) j q =
    let f = t.f in
    let lev = chain.(j) in
    Tr.with_span "t1.descend"
      ~attrs:[ ("level", Tr.Int j); ("coreset_size", Tr.Int (Array.length lev.elems)) ]
      (fun () ->
        match lev.pri with
        | None ->
            Tr.add_attr "path" (Tr.Str "scan");
            scan_filter_top ~k:f q lev.elems
        | Some pri -> (
            match probe "t1.probe" pri q ~tau:Float.neg_infinity ~limit:(4 * f) with
            | Sigs.All elems -> select_top_k f elems
            | Sigs.Truncated _ ->
                (* |q(R_j)| > 4f: fetch a rank-[f,4f] threshold from the
                   next core-set (Lemma 2), then report above it. *)
                let deeper = top_f t chain (j + 1) q in
                let rt = chain.(j + 1).rank_target in
                let threshold = List.nth_opt deeper (rt - 1) in
                let fallback () =
                  t.fallback_count <- t.fallback_count + 1;
                  Tr.event "t1.fallback" ~attrs:[ ("level", Tr.Int j) ];
                  scan_filter_top ~k:f q lev.elems
                in
                (match threshold with
                 | None -> fallback ()
                 | Some e ->
                     let cands = S.query pri q ~tau:(P.weight e) in
                     if List.length cands >= f then select_top_k f cands
                     else fallback ())))

  let query (t : t) q ~k =
    Stats.mark_query ();
    if k <= 0 then []
    else
      Tr.with_span "t1.query" ~attrs:[ ("k", Tr.Int k) ] (fun () ->
          let n = Array.length t.elems in
          if 2 * k >= n then begin
            Tr.add_attr "path" (Tr.Str "scan");
            scan_filter_top ~k q t.elems
          end
          else if k <= t.f then begin
            Tr.add_attr "path" (Tr.Str "chain");
            let top = top_f t t.chain 0 q in
            select_top_k k top
          end
          else begin
            Tr.add_attr "path" (Tr.Str "ladder");
            (* Large k: locate the ladder rung with K in [k, 2k). *)
            let rung =
              let found = ref None in
              Array.iter
                (fun r -> if !found = None && r.kk >= k then found := Some r)
                t.ladder;
              !found
            in
            match rung with
            | None ->
                (* k exceeds every rung (only possible on tiny inputs). *)
                scan_filter_top ~k q t.elems
            | Some rung -> (
                let kk = rung.kk in
                match
                  probe "t1.probe" t.pri_d q ~tau:Float.neg_infinity
                    ~limit:(4 * kk)
                with
                | Sigs.All elems -> select_top_k k elems
                | Sigs.Truncated _ ->
                    let fallback () =
                      t.fallback_count <- t.fallback_count + 1;
                      Tr.event "t1.fallback" ~attrs:[ ("rung", Tr.Int kk) ];
                      scan_filter_top ~k q t.elems
                    in
                    let top = top_f t rung.chain 0 q in
                    (match List.nth_opt top (rung.rung_rank_target - 1) with
                     | None -> fallback ()
                     | Some e ->
                         let cands = S.query t.pri_d q ~tau:(P.weight e) in
                         if List.length cands >= k then select_top_k k cands
                         else fallback ()))
          end)
end
