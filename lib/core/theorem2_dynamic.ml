module Stats = Topk_em.Stats
module Rng = Topk_util.Rng

module Make
    (S : Sigs.DYNAMIC_PRIORITIZED)
    (M : Sigs.DYNAMIC_MAX with module P = S.P) =
struct
  module P = S.P
  module W = Sigs.Weight_order (P)

  type rung = {
    max_structure : M.t;
    ki : int;
    rate : float;  (* 1 / K_i *)
  }

  type t = {
    params : Params.t;
    rng : Rng.t;
    pri : S.t;
    elems : (int, P.elem) Hashtbl.t;  (* current live set *)
    memberships : (int, int list) Hashtbl.t;  (* id -> rung indices *)
    mutable ladder : rung array;
    mutable n_at_build : int;  (* live size when the ladder was sampled *)
    mutable resample_count : int;
    mutable rounds_run : int;
    mutable rounds_failed : int;
  }

  let name = "theorem2-dynamic(" ^ S.name ^ "+" ^ M.name ^ ")"

  let ladder_rates params n =
    let b = Params.block_size () in
    let k1 =
      Float.max 1.
        (params.Params.coreset_scale *. float_of_int b
         *. params.Params.q_max (max 2 n))
    in
    let rec go acc k_f =
      if k_f > float_of_int n /. 4. then List.rev acc
      else go (k_f :: acc) (k_f *. (1. +. params.Params.sigma))
    in
    go [] k1

  let sample_ladder t =
    let n = Hashtbl.length t.elems in
    let rates = ladder_rates t.params n in
    t.memberships |> Hashtbl.reset;
    let rungs =
      List.map
        (fun k_f ->
          { max_structure = M.build ~params:t.params [||];
            ki = max 2 (int_of_float (ceil k_f));
            rate = 1. /. k_f })
        rates
    in
    let ladder = Array.of_list rungs in
    Hashtbl.iter
      (fun id e ->
        let mine = ref [] in
        Array.iteri
          (fun i rung ->
            if Rng.bernoulli t.rng rung.rate then begin
              M.insert rung.max_structure e;
              mine := i :: !mine
            end)
          ladder;
        if !mine <> [] then Hashtbl.replace t.memberships id !mine)
      t.elems;
    t.ladder <- ladder;
    t.n_at_build <- n

  let build ?(params = Params.default) elems =
    let t =
      {
        params;
        rng = Rng.create (params.Params.seed + 2);
        pri = S.build ~params elems;
        elems = Hashtbl.create (max 16 (Array.length elems));
        memberships = Hashtbl.create 64;
        ladder = [||];
        n_at_build = 0;
        resample_count = -1;  (* the initial sample is not a "resample" *)
        rounds_run = 0;
        rounds_failed = 0;
      }
    in
    Array.iter (fun e -> Hashtbl.replace t.elems (P.id e) e) elems;
    sample_ladder t;
    t

  let size t = Hashtbl.length t.elems

  let space_words t =
    S.space_words t.pri + Hashtbl.length t.elems
    + Hashtbl.length t.memberships
    + Array.fold_left
        (fun acc r -> acc + M.space_words r.max_structure)
        0 t.ladder

  let rungs t = Array.length t.ladder

  let resamples t = max 0 t.resample_count

  let rounds_run t = t.rounds_run

  let rounds_failed t = t.rounds_failed

  let maybe_resample t =
    let n = Hashtbl.length t.elems in
    if n > 2 * t.n_at_build || (t.n_at_build > 16 && 2 * n < t.n_at_build)
    then begin
      t.resample_count <- t.resample_count + 1;
      sample_ladder t
    end

  let insert t e =
    let id = P.id e in
    if not (Hashtbl.mem t.elems id) then begin
      Hashtbl.replace t.elems id e;
      S.insert t.pri e;
      let mine = ref [] in
      Array.iteri
        (fun i rung ->
          if Rng.bernoulli t.rng rung.rate then begin
            M.insert rung.max_structure e;
            mine := i :: !mine
          end)
        t.ladder;
      if !mine <> [] then Hashtbl.replace t.memberships id !mine;
      maybe_resample t
    end

  let delete t e =
    let id = P.id e in
    if Hashtbl.mem t.elems id then begin
      Hashtbl.remove t.elems id;
      S.delete t.pri e;
      (match Hashtbl.find_opt t.memberships id with
       | Some indices ->
           List.iter
             (fun i -> M.delete t.ladder.(i).max_structure e)
             indices;
           Hashtbl.remove t.memberships id
       | None -> ());
      maybe_resample t
    end

  let select_top_k k elems =
    Stats.charge_scan (List.length elems);
    W.top_k k elems

  let scan_all_top t q ~k =
    Stats.charge_scan (Hashtbl.length t.elems);
    let matching = ref [] in
    Hashtbl.iter
      (fun _ e -> if P.matches q e then matching := e :: !matching)
      t.elems;
    W.top_k k !matching

  let query t q ~k =
    Stats.mark_query ();
    if k <= 0 then []
    else begin
      let h = Array.length t.ladder in
      let k1 = if h = 0 then 1 else t.ladder.(0).ki in
      let kk = max k k1 in
      if h = 0 || kk > t.ladder.(h - 1).ki then scan_all_top t q ~k
      else begin
        let start = ref 0 in
        while t.ladder.(!start).ki < kk do incr start done;
        let rec round j =
          if j >= h then scan_all_top t q ~k
          else begin
            t.rounds_run <- t.rounds_run + 1;
            let rung = t.ladder.(j) in
            let kj = rung.ki in
            match
              S.query_monitored t.pri q ~tau:Float.neg_infinity
                ~limit:(4 * kj)
            with
            | Sigs.All s -> select_top_k k s
            | Sigs.Truncated _ -> (
                match M.query rung.max_structure q with
                | None ->
                    t.rounds_failed <- t.rounds_failed + 1;
                    round (j + 1)
                | Some e -> (
                    match
                      S.query_monitored t.pri q ~tau:(P.weight e)
                        ~limit:(4 * kj)
                    with
                    | Sigs.All s when List.length s > kj ->
                        select_top_k k s
                    | Sigs.All _ | Sigs.Truncated _ ->
                        t.rounds_failed <- t.rounds_failed + 1;
                        round (j + 1)))
          end
        in
        round !start
      end
    end
end
